#include "dvf/trace/trace_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include <sstream>

#include "dvf/common/error.hpp"
#include "dvf/common/failpoint.hpp"
#include "dvf/common/robust_io.hpp"
#include "dvf/trace/trace_reader.hpp"
#include "wire_format.hpp"

namespace dvf {

namespace {

template <typename T>
void put_native(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

void put_le32(std::ostream& out, std::uint32_t value) {
  char bytes[4];
  wire::store_le32(bytes, value);
  out.write(bytes, sizeof(bytes));
}

void put_le64(std::ostream& out, std::uint64_t value) {
  char bytes[8];
  wire::store_le64(bytes, value);
  out.write(bytes, sizeof(bytes));
}

void write_trace_v1(std::ostream& out,
                    std::span<const DataStructureInfo> structures,
                    std::span<const MemoryRecord> records) {
  out.write(wire::kMagic, sizeof(wire::kMagic));
  put_native(out, wire::kVersion1);

  put_native(out, static_cast<std::uint32_t>(structures.size()));
  for (const DataStructureInfo& info : structures) {
    put_native(out, static_cast<std::uint32_t>(info.name.size()));
    out.write(info.name.data(),
              static_cast<std::streamsize>(info.name.size()));
    put_native(out, info.base_address);
    put_native(out, info.size_bytes);
    put_native(out, info.element_bytes);
  }

  put_native(out, static_cast<std::uint64_t>(records.size()));
  for (const MemoryRecord& record : records) {
    put_native(out, record.address);
    put_native(out, record.size);
    put_native(out, static_cast<std::uint32_t>(record.ds));
    put_native(out, static_cast<std::uint8_t>(record.is_write ? 1 : 0));
  }
}

/// Encodes records[begin, end) as one self-contained chunk payload; decoder
/// state resets per chunk (see wire_format.hpp for the op layout).
void encode_chunk(std::span<const MemoryRecord> records, std::size_t begin,
                  std::size_t end, std::string& payload) {
  payload.clear();
  std::uint64_t prev_addr = 0;
  std::uint32_t prev_size = 0;
  DsId prev_ds = kNoDs;
  std::size_t i = begin;
  while (i < end) {
    const MemoryRecord& head = records[i];
    const std::uint64_t delta = head.address - prev_addr;

    // Collapse a constant-stride run: followers identical to the head
    // except for the address, which keeps advancing by the head's delta.
    std::size_t run = 1;
    std::uint64_t expected = head.address + delta;
    while (i + run < end) {
      const MemoryRecord& next = records[i + run];
      if (next.address != expected || next.size != head.size ||
          next.ds != head.ds || next.is_write != head.is_write) {
        break;
      }
      expected += delta;
      ++run;
    }

    std::uint8_t flags = 0;
    if (head.is_write) {
      flags |= wire::kOpWrite;
    }
    if (head.size == prev_size) {
      flags |= wire::kOpSameSize;
    }
    if (head.ds == prev_ds) {
      flags |= wire::kOpSameDs;
    }
    if (run >= 2) {
      flags |= wire::kOpRun;
    }
    payload.push_back(static_cast<char>(flags));
    wire::put_varint(payload, wire::zigzag_encode(delta));
    if ((flags & wire::kOpSameSize) == 0) {
      wire::put_varint(payload, head.size);
    }
    if ((flags & wire::kOpSameDs) == 0) {
      wire::put_varint(payload, head.ds == kNoDs
                                    ? 0
                                    : static_cast<std::uint64_t>(head.ds) + 1);
    }
    if ((flags & wire::kOpRun) != 0) {
      wire::put_varint(payload, run - 2);
    }

    prev_addr = head.address + (run - 1) * delta;
    prev_size = head.size;
    prev_ds = head.ds;
    i += run;
  }
}

void write_trace_v2(std::ostream& out,
                    std::span<const DataStructureInfo> structures,
                    std::span<const MemoryRecord> records) {
  out.write(wire::kMagic, sizeof(wire::kMagic));
  put_le32(out, wire::kVersion2);

  put_le32(out, static_cast<std::uint32_t>(structures.size()));
  for (const DataStructureInfo& info : structures) {
    put_le32(out, static_cast<std::uint32_t>(info.name.size()));
    out.write(info.name.data(),
              static_cast<std::streamsize>(info.name.size()));
    put_le64(out, info.base_address);
    put_le64(out, info.size_bytes);
    put_le32(out, info.element_bytes);
  }

  put_le64(out, static_cast<std::uint64_t>(records.size()));
  std::string payload;
  for (std::size_t begin = 0; begin < records.size();
       begin += wire::kWriterChunkRecords) {
    const std::size_t end =
        std::min<std::size_t>(records.size(), begin + wire::kWriterChunkRecords);
    encode_chunk(records, begin, end, payload);
    put_le32(out, static_cast<std::uint32_t>(end - begin));
    put_le32(out, static_cast<std::uint32_t>(payload.size()));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
}

}  // namespace

void write_trace(std::ostream& out,
                 std::span<const DataStructureInfo> structures,
                 std::span<const MemoryRecord> records, TraceFormat format) {
  if (auto fp = DVF_FAILPOINT("trace.write")) {
    if (fp.kind == failpoint::ActionKind::kShortWrite) {
      // A torn write: the magic lands, the rest does not — the reader must
      // classify the result as truncation, never crash on it.
      out.write(wire::kMagic, sizeof(wire::kMagic));
    }
    out.setstate(std::ios::failbit);
    throw Error(io::errno_message("trace write failed (injected)",
                                  fp.error_code));
  }
  switch (format) {
    case TraceFormat::kV1:
      write_trace_v1(out, structures, records);
      break;
    case TraceFormat::kV2:
      write_trace_v2(out, structures, records);
      break;
  }
  if (!out) {
    throw Error("trace write failed");
  }
}

void write_trace(std::ostream& out, const DataStructureRegistry& registry,
                 const std::vector<MemoryRecord>& records, TraceFormat format) {
  write_trace(out,
              std::span<const DataStructureInfo>(registry.begin(),
                                                 registry.end()),
              std::span<const MemoryRecord>(records), format);
}

void write_trace_file(const std::string& path,
                      const DataStructureRegistry& registry,
                      const std::vector<MemoryRecord>& records,
                      TraceFormat format) {
  // Render in memory, then land atomically (write-temp-then-rename), so a
  // crash or full disk mid-write can never leave a torn trace under `path`.
  std::ostringstream out(std::ios::binary);
  write_trace(out, registry, records, format);
  auto written = io::write_file_atomic(path, out.str());
  if (!written.ok()) {
    throw Error("cannot write trace file: " + written.error().describe());
  }
}

TraceFile read_trace(std::istream& in) {
  if (auto fp = DVF_FAILPOINT("trace.read")) {
    throw Error(io::errno_message("trace read failed (injected)",
                                  fp.error_code));
  }
  TraceReader reader(in);
  TraceFile trace;
  trace.structures = reader.structures();
  // Reserve from the untrusted header count only up to a sane bound; a
  // corrupt count detects as truncation instead of a huge allocation.
  trace.records.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(reader.total_records(), 1u << 20)));
  while (!reader.done()) {
    const std::span<const MemoryRecord> chunk = reader.next_chunk();
    trace.records.insert(trace.records.end(), chunk.begin(), chunk.end());
  }
  return trace;
}

TraceFile read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot open trace file: " + path);
  }
  return read_trace(in);
}

}  // namespace dvf
