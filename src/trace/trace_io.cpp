#include "dvf/trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "dvf/common/error.hpp"

namespace dvf {

namespace {

constexpr char kMagic[4] = {'D', 'V', 'F', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw Error("truncated trace stream");
  }
  return value;
}

}  // namespace

void write_trace(std::ostream& out, const DataStructureRegistry& registry,
                 const std::vector<MemoryRecord>& records) {
  out.write(kMagic, sizeof(kMagic));
  put(out, kVersion);

  put(out, static_cast<std::uint32_t>(registry.size()));
  for (const DataStructureInfo& info : registry) {
    put(out, static_cast<std::uint32_t>(info.name.size()));
    out.write(info.name.data(),
              static_cast<std::streamsize>(info.name.size()));
    put(out, info.base_address);
    put(out, info.size_bytes);
    put(out, info.element_bytes);
  }

  put(out, static_cast<std::uint64_t>(records.size()));
  for (const MemoryRecord& record : records) {
    put(out, record.address);
    put(out, record.size);
    put(out, static_cast<std::uint32_t>(record.ds));
    put(out, static_cast<std::uint8_t>(record.is_write ? 1 : 0));
  }
  if (!out) {
    throw Error("trace write failed");
  }
}

void write_trace_file(const std::string& path,
                      const DataStructureRegistry& registry,
                      const std::vector<MemoryRecord>& records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw Error("cannot open trace file for writing: " + path);
  }
  write_trace(out, registry, records);
}

TraceFile read_trace(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error("not a DVF trace (bad magic)");
  }
  const auto version = get<std::uint32_t>(in);
  if (version != kVersion) {
    throw Error("unsupported trace version " + std::to_string(version));
  }

  TraceFile trace;
  const auto n_structures = get<std::uint32_t>(in);
  trace.structures.reserve(n_structures);
  for (std::uint32_t i = 0; i < n_structures; ++i) {
    DataStructureInfo info;
    const auto name_len = get<std::uint32_t>(in);
    if (name_len > 4096) {
      throw Error("implausible structure name length in trace");
    }
    info.name.resize(name_len);
    in.read(info.name.data(), name_len);
    if (!in) {
      throw Error("truncated trace stream");
    }
    info.base_address = get<std::uint64_t>(in);
    info.size_bytes = get<std::uint64_t>(in);
    info.element_bytes = get<std::uint32_t>(in);
    trace.structures.push_back(std::move(info));
  }

  const auto n_records = get<std::uint64_t>(in);
  trace.records.reserve(static_cast<std::size_t>(n_records));
  for (std::uint64_t i = 0; i < n_records; ++i) {
    MemoryRecord record{};
    record.address = get<std::uint64_t>(in);
    record.size = get<std::uint32_t>(in);
    record.ds = get<std::uint32_t>(in);
    record.is_write = get<std::uint8_t>(in) != 0;
    if (record.ds != kNoDs && record.ds >= trace.structures.size()) {
      throw Error("trace record references an unknown structure id");
    }
    trace.records.push_back(record);
  }
  return trace;
}

TraceFile read_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("cannot open trace file: " + path);
  }
  return read_trace(in);
}

}  // namespace dvf
