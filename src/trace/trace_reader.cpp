#include "dvf/trace/trace_reader.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>

#include "dvf/common/error.hpp"
#include "wire_format.hpp"

namespace dvf {

namespace {

std::uint32_t byte_swapped(std::uint32_t v) {
  return ((v >> 24) & 0xFFu) | ((v >> 8) & 0xFF00u) | ((v << 8) & 0xFF0000u) |
         (v << 24);
}

}  // namespace

TraceReader::TraceReader(std::istream& in) : in_(&in) { read_header(); }

TraceReader::TraceReader(const std::string& path)
    : owned_(std::make_unique<std::ifstream>(path, std::ios::binary)) {
  if (!*owned_) {
    throw Error("cannot open trace file: " + path);
  }
  in_ = owned_.get();
  read_header();
}

TraceReader::~TraceReader() = default;

void TraceReader::read_exact(char* dst, std::size_t bytes) {
  in_->read(dst, static_cast<std::streamsize>(bytes));
  if (!*in_) {
    throw Error("truncated trace stream");
  }
}

std::uint32_t TraceReader::get_u32() {
  char bytes[4];
  read_exact(bytes, sizeof(bytes));
  if (version_ == wire::kVersion2) {
    return wire::load_le32(bytes);
  }
  std::uint32_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

std::uint64_t TraceReader::get_u64() {
  char bytes[8];
  read_exact(bytes, sizeof(bytes));
  if (version_ == wire::kVersion2) {
    return wire::load_le64(bytes);
  }
  std::uint64_t value;
  std::memcpy(&value, bytes, sizeof(value));
  return value;
}

void TraceReader::read_header() {
  char magic[4] = {};
  in_->read(magic, sizeof(magic));
  if (!*in_ || std::memcmp(magic, wire::kMagic, sizeof(magic)) != 0) {
    throw Error("not a DVF trace (bad magic)");
  }

  // v2 is little-endian on the wire; v1 is producer-native (readable only on
  // a machine of the same endianness). Try the LE interpretation first so a
  // v2 stream parses on any host, then fall back to the native read for v1.
  char version_bytes[4];
  read_exact(version_bytes, sizeof(version_bytes));
  if (wire::load_le32(version_bytes) == wire::kVersion2) {
    version_ = wire::kVersion2;
  } else {
    std::uint32_t native;
    std::memcpy(&native, version_bytes, sizeof(native));
    if (native == wire::kVersion1) {
      if constexpr (std::endian::native != std::endian::little) {
        // A v1 stream carries no endianness marker: on a big-endian host
        // every later u32/u64 field would be read with this host's byte
        // order, which matches the producer's only by coincidence. Refuse
        // instead of silently misreading.
        throw Error(
            "v1 traces are producer-native-endian and not supported on "
            "big-endian hosts; re-record with --format v2");
      }
      version_ = wire::kVersion1;
    } else if (byte_swapped(native) == wire::kVersion1 ||
               byte_swapped(native) == wire::kVersion2) {
      // The version field decodes correctly only with the opposite byte
      // order: the trace was written by a host of foreign endianness.
      throw Error(
          "trace header is byte-swapped (written on a host of opposite "
          "endianness); v1 traces are producer-native — re-record with "
          "--format v2");
    } else {
      throw Error("unsupported trace version " + std::to_string(native));
    }
  }

  const std::uint32_t n_structures = get_u32();
  structures_.reserve(
      std::min<std::uint32_t>(n_structures, wire::kMaxChunkRecords));
  for (std::uint32_t i = 0; i < n_structures; ++i) {
    DataStructureInfo info;
    const std::uint32_t name_len = get_u32();
    if (name_len > wire::kMaxNameLength) {
      throw Error("implausible structure name length in trace");
    }
    info.name.resize(name_len);
    read_exact(info.name.data(), name_len);
    info.base_address = get_u64();
    info.size_bytes = get_u64();
    info.element_bytes = get_u32();
    structures_.push_back(std::move(info));
  }

  total_ = get_u64();
}

std::span<const MemoryRecord> TraceReader::next_chunk() {
  if (done()) {
    return {};
  }
  if (version_ == wire::kVersion2) {
    next_chunk_v2();
  } else {
    next_chunk_v1();
  }
  return buffer_;
}

void TraceReader::next_chunk_v1() {
  // v1 has no chunking on the wire: slice the flat record array into chunks
  // of the writer's nominal v2 chunk size.
  constexpr std::size_t kV1RecordBytes = 8 + 4 + 4 + 1;
  const std::uint64_t count =
      std::min<std::uint64_t>(total_ - delivered_, wire::kWriterChunkRecords);
  scratch_.resize(static_cast<std::size_t>(count) * kV1RecordBytes);
  read_exact(scratch_.data(), scratch_.size());

  buffer_.clear();
  buffer_.reserve(static_cast<std::size_t>(count));
  const char* cursor = scratch_.data();
  for (std::uint64_t i = 0; i < count; ++i) {
    MemoryRecord record{};
    std::memcpy(&record.address, cursor, 8);
    std::memcpy(&record.size, cursor + 8, 4);
    std::memcpy(&record.ds, cursor + 12, 4);
    record.is_write = cursor[16] != 0;
    cursor += kV1RecordBytes;
    if (record.ds != kNoDs && record.ds >= structures_.size()) {
      throw Error("trace record references an unknown structure id");
    }
    buffer_.push_back(record);
  }
  delivered_ += count;
}

void TraceReader::next_chunk_v2() {
  const std::uint32_t count = get_u32();
  const std::uint32_t payload_len = get_u32();
  if (count == 0) {
    throw Error("empty trace chunk");
  }
  if (count > wire::kMaxChunkRecords) {
    throw Error("trace chunk record count exceeds the format cap");
  }
  if (count > total_ - delivered_) {
    throw Error("trace chunk overruns the declared record count");
  }
  if (payload_len > wire::kMaxChunkPayload) {
    throw Error("trace chunk payload exceeds the format cap");
  }
  scratch_.resize(payload_len);
  read_exact(scratch_.data(), payload_len);

  const char* cursor = scratch_.data();
  const char* const end = cursor + payload_len;
  std::uint64_t prev_addr = 0;
  std::uint32_t prev_size = 0;
  DsId prev_ds = kNoDs;
  buffer_.clear();
  buffer_.reserve(count);
  while (buffer_.size() < count) {
    if (cursor == end) {
      throw Error("trace chunk payload underruns its record count");
    }
    const auto flags = static_cast<unsigned char>(*cursor++);
    if ((flags & wire::kOpReservedMask) != 0) {
      throw Error("reserved op bits set in trace chunk");
    }
    const std::uint64_t delta =
        wire::zigzag_decode(wire::get_varint(cursor, end));
    std::uint64_t address = prev_addr + delta;

    std::uint32_t size = prev_size;
    if ((flags & wire::kOpSameSize) == 0) {
      const std::uint64_t raw = wire::get_varint(cursor, end);
      if (raw > 0xFFFFFFFFull) {
        throw Error("record size overflows 32 bits in trace chunk");
      }
      size = static_cast<std::uint32_t>(raw);
    }

    DsId ds = prev_ds;
    if ((flags & wire::kOpSameDs) == 0) {
      const std::uint64_t raw = wire::get_varint(cursor, end);
      if (raw == 0) {
        ds = kNoDs;
      } else if (raw - 1 >= kNoDs) {
        throw Error("structure id overflows 32 bits in trace chunk");
      } else {
        ds = static_cast<DsId>(raw - 1);
      }
    }
    if (ds != kNoDs && ds >= structures_.size()) {
      throw Error("trace record references an unknown structure id");
    }

    std::uint64_t run = 1;
    if ((flags & wire::kOpRun) != 0) {
      run = 2 + wire::get_varint(cursor, end);
      if (run < 2 || run > count - buffer_.size()) {
        throw Error("run overruns trace chunk record count");
      }
    }

    const bool is_write = (flags & wire::kOpWrite) != 0;
    for (std::uint64_t k = 0; k < run; ++k) {
      buffer_.push_back(MemoryRecord{address, size, ds, is_write});
      address += delta;
    }
    prev_addr = address - delta;  // last emitted address
    prev_size = size;
    prev_ds = ds;
  }
  if (cursor != end) {
    throw Error("trailing bytes in trace chunk payload");
  }
  delivered_ += count;
}

}  // namespace dvf
