// Private wire-format helpers shared by the trace writer (trace_io.cpp) and
// the streaming reader (trace_reader.cpp). Not installed; include relative.
//
// v1 ("DVFT", version 1): flat native-endian records — fast but only
// readable on a machine of the producer's endianness (documented caveat).
//
// v2 ("DVFT", version 2): explicitly little-endian everywhere, with the
// record stream split into self-contained chunks:
//
//   magic "DVFT", u32le version = 2,
//   u32le structure count, then per structure:
//     u32le name length, name bytes, u64le base, u64le size, u32le elem size
//   u64le total record count, then chunks until the count is exhausted:
//     u32le record count in chunk, u32le payload byte length, payload
//
// Each chunk's payload is a sequence of ops; decoder state (previous
// address/size/ds) resets at every chunk boundary so any chunk decodes
// standalone. One op encodes one record — or a run of records marching
// through memory at a constant stride:
//
//   u8 flags:
//     0x01 kOpWrite    record(s) are stores
//     0x02 kOpSameSize size equals the previous record's (else varint size)
//     0x04 kOpSameDs   ds equals the previous record's (else varint ds+1,
//                      with kNoDs encoded as 0)
//     0x08 kOpRun      a run: varint (count - 2) extra records follow the
//                      head, each advancing the address by the head's delta
//     0xF0 reserved, must be zero (decoder rejects)
//   zigzag varint address delta vs previous record (previous = 0 at chunk
//   start; wraparound arithmetic on u64)
//   [varint size]   when !kOpSameSize
//   [varint ds+1]   when !kOpSameDs
//   [varint count-2] when kOpRun
//
// Varints are LEB128 (7 bits per byte, high bit = continuation), at most 10
// bytes for a u64. Zigzag maps signed deltas to unsigned:
// (d << 1) ^ (d >> 63).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

#include "dvf/common/error.hpp"

namespace dvf::wire {

inline constexpr char kMagic[4] = {'D', 'V', 'F', 'T'};
inline constexpr std::uint32_t kVersion1 = 1;
inline constexpr std::uint32_t kVersion2 = 2;

/// Caps on untrusted header fields, so a corrupt stream cannot drive a
/// multi-gigabyte allocation before truncation is detected.
inline constexpr std::uint32_t kMaxNameLength = 4096;
inline constexpr std::uint32_t kMaxChunkRecords = 1u << 22;
inline constexpr std::uint32_t kMaxChunkPayload = 1u << 26;

/// Records per chunk the writer emits (small enough that a streaming reader
/// holds ~1.1 MiB of decoded records, large enough to amortize chunk
/// framing).
inline constexpr std::uint32_t kWriterChunkRecords = 1u << 16;

inline constexpr std::uint8_t kOpWrite = 0x01;
inline constexpr std::uint8_t kOpSameSize = 0x02;
inline constexpr std::uint8_t kOpSameDs = 0x04;
inline constexpr std::uint8_t kOpRun = 0x08;
inline constexpr std::uint8_t kOpReservedMask = 0xF0;

/// Byte-at-a-time little-endian stores/loads: portable regardless of host
/// endianness, and the compiler collapses them to plain moves on LE hosts.
inline void store_le32(char* dst, std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

inline void store_le64(char* dst, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    dst[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
  }
}

[[nodiscard]] inline std::uint32_t load_le32(const char* src) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(src[i]))
             << (8 * i);
  }
  return value;
}

[[nodiscard]] inline std::uint64_t load_le64(const char* src) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(static_cast<unsigned char>(src[i]))
             << (8 * i);
  }
  return value;
}

[[nodiscard]] inline std::uint64_t zigzag_encode(std::uint64_t delta) {
  const auto s = static_cast<std::int64_t>(delta);
  return (static_cast<std::uint64_t>(s) << 1) ^
         static_cast<std::uint64_t>(s >> 63);
}

[[nodiscard]] inline std::uint64_t zigzag_decode(std::uint64_t value) {
  return (value >> 1) ^ (~(value & 1) + 1);
}

/// Appends a LEB128 varint to `out`.
inline void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

/// Reads a LEB128 varint from [cursor, end). Throws Error on truncation or
/// a varint longer than a u64 can hold.
[[nodiscard]] inline std::uint64_t get_varint(const char*& cursor,
                                              const char* end) {
  std::uint64_t value = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (cursor == end) {
      throw Error("truncated varint in trace chunk");
    }
    const auto byte = static_cast<unsigned char>(*cursor++);
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      if (shift == 63 && (byte & 0x7E) != 0) {
        throw Error("varint overflow in trace chunk");
      }
      return value;
    }
  }
  throw Error("varint overflow in trace chunk");
}

}  // namespace dvf::wire
