// Tests for the semantic-analysis subsystem: the interval domain, the
// canonical IR + content hash, the per-family transfer functions, the
// bounds driver's verdicts, and the DVF-A3xx diagnostics surface.
#include "dvf/analysis/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <variant>
#include <vector>

#include "dvf/analysis/interval.hpp"
#include "dvf/analysis/ir.hpp"
#include "dvf/common/budget.hpp"
#include "dvf/dsl/analysis.hpp"
#include "dvf/dsl/analyzer.hpp"
#include "dvf/dsl/parser.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/patterns/estimate.hpp"

namespace dvf::analysis {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// --- interval domain -------------------------------------------------------

TEST(Interval, ConstructorsKeepTheDomainInvariant) {
  EXPECT_TRUE(Interval::top().valid());
  EXPECT_TRUE(Interval::point(3.5).is_point());
  EXPECT_TRUE(Interval::point(-2.0).contains(0.0));  // clamped below at 0
  EXPECT_TRUE(Interval::point(kNaN).contains(1e300));  // NaN collapses to top
  EXPECT_TRUE(Interval::bounds(kNaN, 5.0).contains(1e300));
  EXPECT_TRUE(Interval::bounds(5.0, 1.0).contains(2.0));  // inconsistent: top
  EXPECT_TRUE(Interval::bounds(2.0, kInf).valid());
}

TEST(Interval, ArithmeticIsTotalAndNaNFree) {
  const Interval a = Interval::bounds(1.0, 2.0);
  const Interval b = Interval::bounds(3.0, kInf);
  const Interval sum = a + b;
  EXPECT_EQ(sum.lo, 4.0);
  EXPECT_TRUE(std::isinf(sum.hi));
  EXPECT_TRUE(sum.valid());

  // 0 * inf = 0 by the scaled() convention: a zero factor provably zeroes.
  EXPECT_TRUE(Interval::top().scaled(0.0).is_point());
  EXPECT_EQ(Interval::top().scaled(0.0).hi, 0.0);
  EXPECT_TRUE(a.scaled(kNaN).contains(1e308));   // unknown factor: top
  EXPECT_TRUE(a.scaled(-1.0).contains(1e308));   // negative factor: top
  EXPECT_EQ(a.scaled(2.0).lo, 2.0);
  EXPECT_EQ(a.scaled(2.0).hi, 4.0);
}

TEST(Interval, HullIntersectAndWidening) {
  const Interval a = Interval::bounds(1.0, 4.0);
  const Interval b = Interval::bounds(3.0, 8.0);
  EXPECT_EQ(Interval::hull(a, b).lo, 1.0);
  EXPECT_EQ(Interval::hull(a, b).hi, 8.0);
  EXPECT_EQ(Interval::intersect(a, b).lo, 3.0);
  EXPECT_EQ(Interval::intersect(a, b).hi, 4.0);

  // An empty intersection means one input was wrong: fall back to the hull
  // instead of fabricating an unsound empty interval.
  const Interval c = Interval::bounds(10.0, 12.0);
  EXPECT_TRUE(Interval::intersect(a, c).contains(5.0));

  const Interval w = Interval::point(100.0).widened(0.01, 0.5);
  EXPECT_LT(w.lo, 100.0);
  EXPECT_GT(w.hi, 100.0);
  EXPECT_TRUE(w.contains(100.0));
  EXPECT_GE(w.lo, 0.0);
}

// --- IR, canonicalization, content hash ------------------------------------

dsl::CompiledProgram compile(const std::string& source) {
  dsl::DiagnosticEngine diags;
  return dsl::analyze(dsl::parse(source), diags);
}

constexpr const char* kBaseSource = R"(
machine "m1" { cache { associativity 4; sets 64; line 32; } memory { fit 5000; } }
model "M" {
  time 1.5;
  data A { elements 1024; element_size 8; }
  pattern A stream { stride 1; }
  data B { elements 256; element_size 16; }
  pattern B reuse { rounds 3; other_bytes 4096; }
}
)";

// Same program, every declaration order permuted.
constexpr const char* kReorderedSource = R"(
model "M" {
  data B { elements 256; element_size 16; }
  pattern B reuse { rounds 3; other_bytes 4096; }
  data A { elements 1024; element_size 8; }
  pattern A stream { stride 1; }
  time 1.5;
}
machine "m1" { cache { associativity 4; sets 64; line 32; } memory { fit 5000; } }
)";

TEST(CanonicalHash, InvariantUnderDeclarationReordering) {
  const auto a = compile(kBaseSource);
  const auto b = compile(kReorderedSource);
  EXPECT_EQ(canonical_hash(a.machines, a.models),
            canonical_hash(b.machines, b.models));
}

TEST(CanonicalHash, DeadStructuresDoNotAffectTheHash) {
  const auto a = compile(kBaseSource);
  const std::string with_dead = std::string(kBaseSource).substr(0, 0) + R"(
machine "m1" { cache { associativity 4; sets 64; line 32; } memory { fit 5000; } }
model "M" {
  time 1.5;
  data A { elements 1024; element_size 8; }
  pattern A stream { stride 1; }
  data B { elements 256; element_size 16; }
  pattern B reuse { rounds 3; other_bytes 4096; }
  data unused { elements 64; element_size 8; }
}
)";
  const auto b = compile(with_dead);
  EXPECT_EQ(canonical_hash(a.machines, a.models),
            canonical_hash(b.machines, b.models));
}

TEST(CanonicalHash, SensitiveToSemanticParameterChanges) {
  const auto a = compile(kBaseSource);
  const std::string changed = R"(
machine "m1" { cache { associativity 4; sets 64; line 32; } memory { fit 5000; } }
model "M" {
  time 1.5;
  data A { elements 1024; element_size 8; }
  pattern A stream { stride 2; }
  data B { elements 256; element_size 16; }
  pattern B reuse { rounds 3; other_bytes 4096; }
}
)";
  const auto b = compile(changed);
  EXPECT_NE(canonical_hash(a.machines, a.models),
            canonical_hash(b.machines, b.models));
}

TEST(CanonicalHash, CanonicalizeIsIdempotent) {
  const auto program = compile(kBaseSource);
  ProgramIr ir = build_ir(program.machines, program.models);
  canonicalize(ir);
  const std::uint64_t once = content_hash(ir);
  canonicalize(ir);
  EXPECT_EQ(content_hash(ir), once);
}

TEST(CanonicalHash, ValueNumberingSharesIdenticalPhases) {
  const auto program = compile(R"(
model "M" {
  data A { elements 128; element_size 8; }
  pattern A stream { stride 1; repeat 3; }
}
)");
  // `repeat 3` lowers to three identical StreamingSpec phases: the pool
  // must hold exactly one node.
  const ProgramIr ir = build_ir(program.machines, program.models);
  EXPECT_EQ(ir.patterns.size(), 1u);
  ASSERT_EQ(ir.models.size(), 1u);
  ASSERT_EQ(ir.models[0].structures.size(), 1u);
  EXPECT_EQ(ir.models[0].structures[0].phases.size(), 3u);
}

TEST(SpecEqual, DistinguishesFieldwise) {
  StreamingSpec a;
  a.element_bytes = 8;
  a.element_count = 100;
  a.stride_elements = 1;
  StreamingSpec b = a;
  EXPECT_TRUE(spec_equal(PatternSpec{a}, PatternSpec{b}));
  b.stride_elements = 2;
  EXPECT_FALSE(spec_equal(PatternSpec{a}, PatternSpec{b}));
  ReuseSpec r;
  EXPECT_FALSE(spec_equal(PatternSpec{a}, PatternSpec{r}));
}

// --- transfer functions ----------------------------------------------------

TEST(PatternBounds, StreamingIsAnExactPoint) {
  StreamingSpec spec;
  spec.element_bytes = 8;
  spec.element_count = 4096;
  spec.stride_elements = 1;
  for (const CacheConfig& cache : caches::all_profiling()) {
    const PatternFacts facts = pattern_bounds(PatternSpec{spec}, cache);
    ASSERT_FALSE(facts.provably_rejects);
    EXPECT_TRUE(facts.exact);
    EXPECT_TRUE(facts.n_ha.is_point());
    const double value =
        try_estimate_accesses(PatternSpec{spec}, cache).value_or_throw();
    EXPECT_EQ(facts.n_ha.lo, value);
  }
}

TEST(PatternBounds, RandomIntervalContainsTheEstimator) {
  RandomSpec spec;
  spec.element_count = 4096;
  spec.element_bytes = 16;
  spec.visits_per_iteration = 12.0;
  spec.iterations = 50;
  for (const CacheConfig& cache : caches::all_profiling()) {
    const PatternFacts facts = pattern_bounds(PatternSpec{spec}, cache);
    const auto result = try_estimate_accesses(PatternSpec{spec}, cache);
    if (facts.provably_rejects) {
      EXPECT_FALSE(result.ok()) << cache.describe();
      continue;
    }
    ASSERT_TRUE(result.ok()) << cache.describe();
    EXPECT_TRUE(facts.n_ha.contains(*result))
        << cache.describe() << ": " << *result << " not in ["
        << facts.n_ha.lo << ", " << facts.n_ha.hi << "]";
  }
}

TEST(PatternBounds, TemplateTightensToAPointWhenCheap) {
  TemplateSpec spec;
  spec.element_bytes = 8;
  spec.repetitions = 4;
  for (std::uint64_t i = 0; i < 512; ++i) {
    spec.element_indices.push_back(i);
  }
  const CacheConfig cache = caches::profiling_16kb();
  const PatternFacts facts = pattern_bounds(PatternSpec{spec}, cache);
  ASSERT_FALSE(facts.provably_rejects);
  EXPECT_TRUE(facts.exact);
  const double value =
      try_estimate_accesses(PatternSpec{spec}, cache).value_or_throw();
  EXPECT_EQ(facts.n_ha.lo, value);
  EXPECT_EQ(facts.n_ha.hi, value);
}

TEST(PatternBounds, ReuseZeroRoundsIsExactlyTheFootprint) {
  ReuseSpec spec;
  spec.self_bytes = 8192;
  spec.other_bytes = 4096;
  spec.reuse_rounds = 0;
  const CacheConfig cache = caches::profiling_16kb();
  const PatternFacts facts = pattern_bounds(PatternSpec{spec}, cache);
  ASSERT_FALSE(facts.provably_rejects);
  EXPECT_TRUE(facts.n_ha.is_point());
  const double value =
      try_estimate_accesses(PatternSpec{spec}, cache).value_or_throw();
  EXPECT_EQ(facts.n_ha.lo, value);
  EXPECT_TRUE(facts.zero_steady_work);
}

TEST(PatternBounds, ProvableRejectionMatchesTheEvaluator) {
  RandomSpec bad;
  bad.element_count = 0;  // domain precondition fails for every budget
  bad.element_bytes = 8;
  bad.visits_per_iteration = 1.0;
  bad.iterations = 1;
  const CacheConfig cache = caches::profiling_16kb();
  const PatternFacts facts = pattern_bounds(PatternSpec{bad}, cache);
  EXPECT_TRUE(facts.provably_rejects);
  const auto result = try_estimate_accesses(PatternSpec{bad}, cache);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(facts.reject_kind, result.error().kind);
}

TEST(PatternBounds, ZeroSteadyWorkFacts) {
  StreamingSpec stream;
  stream.element_bytes = 8;
  stream.element_count = 10;
  stream.stride_elements = 1;
  EXPECT_FALSE(zero_steady_work(PatternSpec{stream}));

  RandomSpec rand;
  rand.iterations = 0;
  EXPECT_TRUE(zero_steady_work(PatternSpec{rand}));

  TemplateSpec tmpl;  // no indices at all
  EXPECT_TRUE(zero_steady_work(PatternSpec{tmpl}));

  ReuseSpec reuse;
  reuse.self_bytes = 64;
  reuse.reuse_rounds = 0;
  EXPECT_TRUE(zero_steady_work(PatternSpec{reuse}));
}

// --- bounds driver ---------------------------------------------------------

TEST(Analyze, VerdictsAndModelComposition) {
  const auto program = compile(R"(
machine "small" { cache { associativity 4; sets 32; line 32; } memory { fit 5000; } }
machine "large" { cache { associativity 8; sets 512; line 32; } memory { fit 5000; } }
model "M" {
  time 2.0;
  data hot { elements 4096; element_size 8; }
  pattern hot stream { stride 1; }
  data idle { elements 64; element_size 8; }
}
)");
  const AnalysisReport report = analyze(program.machines, program.models);
  ASSERT_EQ(report.machines.size(), 2u);
  const ModelBounds* model = report.find_model("M");
  ASSERT_NE(model, nullptr);
  ASSERT_EQ(model->structures.size(), 2u);

  const StructureBounds& hot = model->structures[0];
  EXPECT_FALSE(hot.dead);
  EXPECT_TRUE(hot.monotone_in_capacity);
  ASSERT_EQ(hot.per_machine.size(), 2u);
  EXPECT_TRUE(hot.per_machine[0].exact);

  const StructureBounds& idle = model->structures[1];
  EXPECT_TRUE(idle.dead);
  EXPECT_TRUE(idle.n_ha.is_point());
  EXPECT_EQ(idle.n_ha.hi, 0.0);
  EXPECT_TRUE(idle.dvf.is_point());
  EXPECT_EQ(idle.dvf.hi, 0.0);

  // Model totals contain the evaluator on each machine.
  for (std::size_t m = 0; m < program.machines.size(); ++m) {
    DvfCalculator calc(program.machines[m]);
    const auto result = calc.try_for_model(program.models[0]);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(model->per_machine[m].dvf.contains(result.value().total))
        << program.machines[m].name;
  }
}

TEST(Analyze, DeterministicAcrossThreadCounts) {
  // Enough structures to cross the parallel fan-out threshold.
  std::string source =
      "machine \"m\" { cache { associativity 4; sets 64; line 32; } "
      "memory { fit 5000; } }\nmodel \"big\" {\n  time 1.0;\n";
  for (int i = 0; i < 24; ++i) {
    const std::string name = "d" + std::to_string(i);
    source += "  data " + name + " { elements " + std::to_string(128 + i) +
              "; element_size 8; }\n  pattern " + name +
              " stream { stride 1; }\n";
  }
  source += "}\n";
  const auto program = compile(source);

  AnalysisOptions serial;
  serial.threads = 1;
  AnalysisOptions threaded;
  threaded.threads = 4;
  const AnalysisReport a = analyze(program.machines, program.models, serial);
  const AnalysisReport b = analyze(program.machines, program.models, threaded);
  EXPECT_EQ(a.canonical_hash, b.canonical_hash);
  ASSERT_EQ(a.models.size(), b.models.size());
  for (std::size_t i = 0; i < a.models[0].structures.size(); ++i) {
    const StructureBounds& sa = a.models[0].structures[i];
    const StructureBounds& sb = b.models[0].structures[i];
    EXPECT_EQ(sa.name, sb.name);
    EXPECT_EQ(sa.n_ha.lo, sb.n_ha.lo);
    EXPECT_EQ(sa.n_ha.hi, sb.n_ha.hi);
    EXPECT_EQ(sa.dvf.lo, sb.dvf.lo);
    EXPECT_EQ(sa.dvf.hi, sb.dvf.hi);
  }
}

TEST(Analyze, TotalWithNoMachines) {
  const auto program = compile(R"(
model "M" {
  data A { elements 128; element_size 8; }
  pattern A stream { stride 1; }
}
)");
  const AnalysisReport report = analyze(program.machines, program.models);
  EXPECT_TRUE(report.machines.empty());
  ASSERT_EQ(report.models.size(), 1u);
  const StructureBounds& ds = report.models[0].structures[0];
  EXPECT_TRUE(ds.n_ha.valid());
  EXPECT_TRUE(ds.per_machine.empty());
  EXPECT_NE(report.canonical_hash, 0u);
}

// --- provenance + A3xx diagnostics -----------------------------------------

TEST(SemanticAnalysis, ProvenanceRecordsLoweredDeclarations) {
  const auto result = dsl::analyze_models(R"(
model "M" {
  data A { elements 128; element_size 8; }
  pattern A stream { stride 1; repeat 2; }
}
)");
  ASSERT_TRUE(result.report.has_value());
  ASSERT_EQ(result.program.provenance.size(), 1u);
  const dsl::PatternProvenance& row = result.program.provenance[0];
  EXPECT_EQ(row.model, "M");
  EXPECT_EQ(row.structure, "A");
  EXPECT_EQ(row.phase_count, 2u);  // repeat 2 lowers to two phases
  EXPECT_GT(row.line, 0);
}

std::size_t count_code(const dsl::SemanticAnalysis& result,
                       const char* code) {
  std::size_t n = 0;
  for (const auto& d : result.diagnostics) {
    if (d.code == code) {
      ++n;
    }
  }
  return n;
}

TEST(SemanticAnalysis, ReportsDeadAndZeroWorkStructures) {
  const auto result = dsl::analyze_models(R"(
machine "m" { cache { associativity 4; sets 64; line 32; } memory { fit 5000; } }
model "M" {
  time 1.0;
  data A { elements 128; element_size 8; }
  pattern A stream { stride 1; repeat 0; }
  data B { elements 128; element_size 8; }
  pattern B stream { stride 1; }
}
)");
  ASSERT_TRUE(result.report.has_value());
  EXPECT_EQ(count_code(result, dsl::codes::kAnalysisDeadStructure), 1u);
  EXPECT_EQ(count_code(result, dsl::codes::kAnalysisZeroWork), 1u);
}

TEST(SemanticAnalysis, ReportsWorkingSetExceedingEveryShare) {
  const auto result = dsl::analyze_models(R"(
machine "tiny" { cache { associativity 2; sets 16; line 32; } memory { fit 5000; } }
model "M" {
  time 1.0;
  data big { elements 1048576; element_size 8; }
  pattern big reuse { rounds 2; }
}
)");
  ASSERT_TRUE(result.report.has_value());
  EXPECT_EQ(count_code(result, dsl::codes::kAnalysisExceedsAllShares), 1u);
}

TEST(SemanticAnalysis, UnparseableSourceYieldsDiagnosticsNotAReport) {
  const auto result = dsl::analyze_models("model { not valid");
  EXPECT_FALSE(result.report.has_value());
  EXPECT_GT(result.errors, 0u);
}

}  // namespace
}  // namespace dvf::analysis
