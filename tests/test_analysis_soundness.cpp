// The load-bearing contract of the analysis subsystem: for every model file
// shipped in the repository — the paper models in models/ and every lint
// regression case — the intervals `dvfc analyze` reports must contain the
// exact values the evaluator computes, on every machine the file declares
// AND on the full profiling-cache matrix. A provably-rejects verdict must
// never coexist with evaluator success.
#include <gtest/gtest.h>

#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "dvf/analysis/bounds.hpp"
#include "dvf/common/budget.hpp"
#include "dvf/dsl/analysis.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/patterns/estimate.hpp"

namespace dvf::analysis {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> aspen_files(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".aspen") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

EvalLimits differential_limits() {
  EvalLimits limits;
  limits.max_references = std::uint64_t{1} << 22;
  limits.max_expansion = std::uint64_t{1} << 20;
  limits.wall_seconds = 2.0;
  return limits;
}

/// Checks the report for `machines` against the evaluator, structure by
/// structure and model by model. Only evaluator *successes* constrain the
/// analysis; budget-limited failures are fine (the analysis may still have
/// proved a bound), but a success outside the interval — or any success on
/// a pattern the analysis claims provably rejects — is a soundness bug.
void expect_sound(const std::vector<Machine>& machines,
                  const std::vector<ModelSpec>& models,
                  const AnalysisReport& report, const std::string& label) {
  EvalBudget budget(differential_limits());
  for (std::size_t m = 0; m < machines.size(); ++m) {
    const Machine& machine = machines[m];
    for (const ModelSpec& model : models) {
      const ModelBounds* mb = report.find_model(model.name);
      ASSERT_NE(mb, nullptr) << label << ": model " << model.name;
      ASSERT_LT(m, mb->per_machine.size()) << label;
      for (const DataStructureSpec& ds : model.structures) {
        const StructureBounds* sb = nullptr;
        for (const StructureBounds& candidate : mb->structures) {
          if (candidate.name == ds.name) {
            sb = &candidate;
            break;
          }
        }
        ASSERT_NE(sb, nullptr) << label << ": structure " << ds.name;
        ASSERT_LT(m, sb->per_machine.size()) << label;

        budget.reset();
        const auto n_ha = try_estimate_accesses(
            std::span<const PatternSpec>(ds.patterns), machine.llc, &budget);
        if (sb->per_machine[m].eval_rejects) {
          EXPECT_FALSE(n_ha.ok())
              << label << ": " << model.name << "/" << ds.name << " on "
              << machine.name
              << " claims provable rejection but the evaluator succeeded";
        }
        if (n_ha.ok()) {
          EXPECT_TRUE(sb->per_machine[m].n_ha.contains(*n_ha))
              << label << ": " << model.name << "/" << ds.name << " on "
              << machine.name << ": N_ha " << *n_ha << " outside ["
              << sb->per_machine[m].n_ha.lo << ", "
              << sb->per_machine[m].n_ha.hi << "]";
        }
      }
      if (model.exec_time_seconds.has_value()) {
        DvfCalculator calc(machine);
        budget.reset();
        calc.set_budget(&budget);
        const auto total = calc.try_for_model(model);
        if (total.ok()) {
          EXPECT_TRUE(mb->per_machine[m].dvf.contains(total.value().total))
              << label << ": " << model.name << " on " << machine.name
              << ": DVF " << total.value().total << " outside ["
              << mb->per_machine[m].dvf.lo << ", "
              << mb->per_machine[m].dvf.hi << "]";
        }
      }
    }
  }
}

/// The profiling-cache matrix (Table IV) with an unprotected-DRAM memory
/// model, exercising cache geometries the files themselves never declare.
std::vector<Machine> profiling_matrix() {
  std::vector<Machine> machines;
  for (CacheConfig& cache : caches::all_profiling()) {
    std::string name = "matrix-" + cache.name();
    machines.emplace_back(std::move(name), std::move(cache),
                          MemoryModel(5000.0));
  }
  return machines;
}

void check_directory(const fs::path& dir) {
  const auto files = aspen_files(dir);
  ASSERT_FALSE(files.empty()) << dir;
  const std::vector<Machine> matrix = profiling_matrix();
  for (const fs::path& path : files) {
    SCOPED_TRACE(path.filename().string());
    const dsl::SemanticAnalysis result =
        dsl::analyze_models_file(path.string());
    if (!result.report.has_value()) {
      continue;  // unparseable lint cases have nothing to check
    }
    const std::string label = path.filename().string();
    expect_sound(result.program.machines, result.program.models,
                 *result.report, label + " (declared machines)");

    // Re-run the driver over the same models on the profiling matrix.
    const AnalysisReport matrix_report =
        analyze(matrix, result.program.models);
    expect_sound(matrix, result.program.models, matrix_report,
                 label + " (profiling matrix)");

    // The canonical hash must not depend on which machines were supplied
    // beyond the machines themselves: two runs over identical inputs agree.
    const AnalysisReport again = analyze(matrix, result.program.models);
    EXPECT_EQ(matrix_report.canonical_hash, again.canonical_hash) << label;
  }
}

TEST(AnalysisSoundness, PaperModelsAreContained) {
  check_directory(DVF_MODELS_DIR);
}

TEST(AnalysisSoundness, LintCasesAreContained) {
  check_directory(DVF_LINT_CASES_DIR);
}

}  // namespace
}  // namespace dvf::analysis
