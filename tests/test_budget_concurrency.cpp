// EvalBudget under concurrent chargers: the serve daemon shares one
// request-scoped budget across DvfCalculator's parallel fan-out, so the
// wall-clock deadline and cooperative cancellation must behave identically
// no matter how many threads are charging — same verdict taxonomy, bounded
// observation window, no lost wake-ups.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "dvf/common/budget.hpp"

namespace {

using dvf::ErrorKind;
using dvf::EvalBudget;
using dvf::EvalLimits;

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Runs `threads` chargers against one budget armed with `wall_seconds`.
/// Each charger hammers charge_references until the budget errors, then
/// reports (kind, when). The 10 s failsafe turns a lost deadline into a
/// test failure rather than a hung suite.
struct ChargerOutcome {
  ErrorKind kind = ErrorKind::kDomainError;
  double observed_at_s = 0.0;
  bool errored = false;
};

std::vector<ChargerOutcome> run_chargers(unsigned threads,
                                         double wall_seconds) {
  EvalLimits limits;
  limits.max_references = 0;  // disabled: only the deadline can fire
  limits.max_expansion = 0;
  limits.wall_seconds = wall_seconds;
  EvalBudget budget(limits);

  std::vector<ChargerOutcome> outcomes(threads);
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&budget, &outcomes, start, t] {
      while (seconds_since(start) < 10.0) {
        const dvf::Result<void> charged = budget.charge_references(128);
        if (!charged.ok()) {
          outcomes[t] = {charged.error().kind, seconds_since(start), true};
          return;
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  return outcomes;
}

// Every charger observes the expired deadline, with the same classified
// verdict, within a bounded window after expiry — across thread counts.
TEST(BudgetConcurrency, AllChargersObserveDeadline) {
  constexpr double kWall = 0.05;
  // Generous bound: the loop re-checks every charge, so observation lag is
  // scheduling noise, not algorithmic delay.
  constexpr double kWindow = 2.0;
  for (const unsigned threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::vector<ChargerOutcome> outcomes =
        run_chargers(threads, kWall);
    for (unsigned t = 0; t < threads; ++t) {
      SCOPED_TRACE("charger=" + std::to_string(t));
      ASSERT_TRUE(outcomes[t].errored);
      // Bit-identical taxonomy: deadline_exceeded for every charger at
      // every thread count — never resource_limit, never a mixed verdict.
      EXPECT_EQ(outcomes[t].kind, ErrorKind::kDeadlineExceeded);
      EXPECT_GE(outcomes[t].observed_at_s, kWall);
      EXPECT_LT(outcomes[t].observed_at_s, kWall + kWindow);
    }
  }
}

// cancel() from an unrelated thread is observed by every charger as the
// same deadline_exceeded verdict an expired wall clock produces.
TEST(BudgetConcurrency, CancelStopsConcurrentChargers) {
  EvalLimits limits;
  limits.max_references = 0;
  limits.max_expansion = 0;
  limits.wall_seconds = 0.0;  // no deadline: only cancel() can stop them
  EvalBudget budget(limits);

  constexpr unsigned kThreads = 4;
  std::vector<ChargerOutcome> outcomes(kThreads);
  const Clock::time_point start = Clock::now();
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&budget, &outcomes, start, t] {
      while (seconds_since(start) < 10.0) {
        const dvf::Result<void> charged = budget.charge_references(1);
        if (!charged.ok()) {
          outcomes[t] = {charged.error().kind, seconds_since(start), true};
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  budget.cancel();
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_TRUE(budget.cancelled());
  EXPECT_EQ(budget.wall_remaining_seconds(), 0.0);
  for (unsigned t = 0; t < kThreads; ++t) {
    SCOPED_TRACE("charger=" + std::to_string(t));
    ASSERT_TRUE(outcomes[t].errored);
    EXPECT_EQ(outcomes[t].kind, ErrorKind::kDeadlineExceeded);
    EXPECT_LT(outcomes[t].observed_at_s, 5.0);
  }
}

TEST(BudgetConcurrency, WallRemainingSeconds) {
  EvalBudget unarmed;
  EXPECT_TRUE(std::isinf(unarmed.wall_remaining_seconds()));

  EvalLimits limits;
  limits.wall_seconds = 30.0;
  EvalBudget armed(limits);
  const double remaining = armed.wall_remaining_seconds();
  EXPECT_GT(remaining, 0.0);
  EXPECT_LE(remaining, 30.0);

  armed.cancel();
  EXPECT_EQ(armed.wall_remaining_seconds(), 0.0);
}

TEST(BudgetConcurrency, ResetClearsCancellation) {
  EvalBudget budget;
  budget.cancel();
  EXPECT_FALSE(budget.check_deadline().ok());
  budget.reset();
  EXPECT_FALSE(budget.cancelled());
  EXPECT_TRUE(budget.check_deadline().ok());
}

}  // namespace
