// Unit tests for the trace-driven LRU cache simulator.
#include "dvf/cachesim/cache_simulator.hpp"

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"
#include "dvf/machine/cache_config.hpp"

namespace dvf {
namespace {

CacheConfig tiny() { return {"tiny", 2, 2, 16}; }  // 2-way, 2 sets, 16B lines

TEST(CacheSimulator, ColdMissThenHit) {
  CacheSimulator sim(tiny());
  sim.on_load(0, 0, 8);
  sim.on_load(0, 0, 8);
  const CacheStats st = sim.stats(0);
  EXPECT_EQ(st.accesses, 2u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.writebacks, 0u);
}

TEST(CacheSimulator, AccessSpanningTwoLinesProbesBoth) {
  CacheSimulator sim(tiny());
  sim.on_load(0, 12, 8);  // bytes 12..19 cross the 16-byte boundary
  const CacheStats st = sim.stats(0);
  EXPECT_EQ(st.accesses, 2u);
  EXPECT_EQ(st.misses, 2u);
}

TEST(CacheSimulator, LruEvictionOrder) {
  CacheSimulator sim(tiny());
  // Set 0 receives blocks at addresses 0, 32, 64 (block % 2 == 0).
  sim.on_load(0, 0, 4);
  sim.on_load(0, 32, 4);
  sim.on_load(0, 0, 4);   // touch block 0 again: block 32 becomes LRU
  sim.on_load(0, 64, 4);  // evicts block 32
  sim.on_load(0, 0, 4);   // still resident
  EXPECT_EQ(sim.stats(0).misses, 3u);
  EXPECT_EQ(sim.stats(0).hits, 2u);
  sim.on_load(0, 32, 4);  // was evicted: miss
  EXPECT_EQ(sim.stats(0).misses, 4u);
}

TEST(CacheSimulator, WritebackOnDirtyEviction) {
  CacheSimulator sim(tiny());
  sim.on_store(1, 0, 4);   // dirty block 0 (owner ds=1)
  sim.on_load(2, 32, 4);   // same set
  sim.on_load(2, 64, 4);   // evicts ds=1's dirty block
  EXPECT_EQ(sim.stats(1).writebacks, 1u);
  EXPECT_EQ(sim.stats(2).writebacks, 0u);
}

TEST(CacheSimulator, FlushChargesResidentDirtyLines) {
  CacheSimulator sim(tiny());
  sim.on_store(0, 0, 4);
  sim.on_store(0, 16, 4);
  sim.on_load(0, 48, 4);
  EXPECT_EQ(sim.stats(0).writebacks, 0u);
  sim.flush();
  EXPECT_EQ(sim.stats(0).writebacks, 2u);
  EXPECT_EQ(sim.resident_lines(), 0u);
}

TEST(CacheSimulator, FlushIsIdempotent) {
  CacheSimulator sim(tiny());
  sim.on_store(0, 0, 4);
  sim.flush();
  sim.flush();
  EXPECT_EQ(sim.stats(0).writebacks, 1u);
}

TEST(CacheSimulator, ResetClearsEverything) {
  CacheSimulator sim(tiny());
  sim.on_store(0, 0, 4);
  sim.reset();
  EXPECT_EQ(sim.total_stats().accesses, 0u);
  EXPECT_EQ(sim.resident_lines(), 0u);
  sim.on_load(0, 0, 4);
  EXPECT_EQ(sim.stats(0).misses, 1u);
}

TEST(CacheSimulator, PerStructureAttribution) {
  CacheSimulator sim(tiny());
  sim.on_load(3, 0, 4);
  sim.on_load(7, 16, 4);
  EXPECT_EQ(sim.stats(3).misses, 1u);
  EXPECT_EQ(sim.stats(7).misses, 1u);
  EXPECT_EQ(sim.stats(4).accesses, 0u);
  EXPECT_EQ(sim.total_stats().misses, 2u);
}

TEST(CacheSimulator, UnattributedAccessesLandInTotals) {
  CacheSimulator sim(tiny());
  sim.on_load(kNoDs, 0, 4);
  EXPECT_EQ(sim.stats(kNoDs).misses, 1u);
  EXPECT_EQ(sim.total_stats().misses, 1u);
}

TEST(CacheSimulator, WorkingSetWithinCapacityNeverMissesTwice) {
  // 2 sets * 2 ways * 16B = 64B capacity: a 64-byte working set fits.
  CacheSimulator sim(tiny());
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t addr = 0; addr < 64; addr += 16) {
      sim.on_load(0, addr, 4);
    }
  }
  EXPECT_EQ(sim.stats(0).misses, 4u);
  EXPECT_EQ(sim.stats(0).hits, 36u);
}

TEST(CacheSimulator, CyclicOverCapacityThrashesUnderLru) {
  // 3 blocks cycling through a 2-way set: LRU evicts the block about to be
  // used, so every access misses.
  CacheSimulator sim({"one-set", 2, 1, 16});
  for (int round = 0; round < 5; ++round) {
    sim.on_load(0, 0, 4);
    sim.on_load(0, 16, 4);
    sim.on_load(0, 32, 4);
  }
  EXPECT_EQ(sim.stats(0).hits, 0u);
  EXPECT_EQ(sim.stats(0).misses, 15u);
}

TEST(CacheSimulator, ZeroSizeAccessRejected) {
  CacheSimulator sim(tiny());
  EXPECT_THROW(sim.access(0, 0, false, 0), InvalidArgumentError);
}

TEST(CacheConfig, DerivedQuantities) {
  const CacheConfig c = caches::small_verification();
  EXPECT_EQ(c.capacity_bytes(), 8u * 1024u);
  EXPECT_EQ(c.total_blocks(), 256u);
  EXPECT_EQ(c.set_of(0), 0u);
  EXPECT_EQ(c.set_of(32), 1u);
  EXPECT_EQ(c.block_of(63), 1u);
}

TEST(CacheConfig, RejectsBadGeometry) {
  EXPECT_THROW(CacheConfig("bad", 0, 4, 32), InvalidArgumentError);
  EXPECT_THROW(CacheConfig("bad", 4, 0, 32), InvalidArgumentError);
  EXPECT_THROW(CacheConfig("bad", 4, 4, 48), InvalidArgumentError);
}

}  // namespace
}  // namespace dvf
