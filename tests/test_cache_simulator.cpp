// Unit tests for the trace-driven LRU cache simulator.
#include "dvf/cachesim/cache_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/trace/registry.hpp"

namespace dvf {
namespace {

CacheConfig tiny() { return {"tiny", 2, 2, 16}; }  // 2-way, 2 sets, 16B lines

TEST(CacheSimulator, ColdMissThenHit) {
  CacheSimulator sim(tiny());
  sim.on_load(0, 0, 8);
  sim.on_load(0, 0, 8);
  const CacheStats st = sim.stats(0);
  EXPECT_EQ(st.accesses, 2u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.writebacks, 0u);
}

TEST(CacheSimulator, AccessSpanningTwoLinesProbesBoth) {
  CacheSimulator sim(tiny());
  sim.on_load(0, 12, 8);  // bytes 12..19 cross the 16-byte boundary
  const CacheStats st = sim.stats(0);
  EXPECT_EQ(st.accesses, 2u);
  EXPECT_EQ(st.misses, 2u);
}

TEST(CacheSimulator, LruEvictionOrder) {
  CacheSimulator sim(tiny());
  // Set 0 receives blocks at addresses 0, 32, 64 (block % 2 == 0).
  sim.on_load(0, 0, 4);
  sim.on_load(0, 32, 4);
  sim.on_load(0, 0, 4);   // touch block 0 again: block 32 becomes LRU
  sim.on_load(0, 64, 4);  // evicts block 32
  sim.on_load(0, 0, 4);   // still resident
  EXPECT_EQ(sim.stats(0).misses, 3u);
  EXPECT_EQ(sim.stats(0).hits, 2u);
  sim.on_load(0, 32, 4);  // was evicted: miss
  EXPECT_EQ(sim.stats(0).misses, 4u);
}

TEST(CacheSimulator, WritebackOnDirtyEviction) {
  CacheSimulator sim(tiny());
  sim.on_store(1, 0, 4);   // dirty block 0 (owner ds=1)
  sim.on_load(2, 32, 4);   // same set
  sim.on_load(2, 64, 4);   // evicts ds=1's dirty block
  EXPECT_EQ(sim.stats(1).writebacks, 1u);
  EXPECT_EQ(sim.stats(2).writebacks, 0u);
}

TEST(CacheSimulator, FlushChargesResidentDirtyLines) {
  CacheSimulator sim(tiny());
  sim.on_store(0, 0, 4);
  sim.on_store(0, 16, 4);
  sim.on_load(0, 48, 4);
  EXPECT_EQ(sim.stats(0).writebacks, 0u);
  sim.flush();
  EXPECT_EQ(sim.stats(0).writebacks, 2u);
  EXPECT_EQ(sim.resident_lines(), 0u);
}

TEST(CacheSimulator, FlushIsIdempotent) {
  CacheSimulator sim(tiny());
  sim.on_store(0, 0, 4);
  sim.flush();
  sim.flush();
  EXPECT_EQ(sim.stats(0).writebacks, 1u);
}

TEST(CacheSimulator, ResetClearsEverything) {
  CacheSimulator sim(tiny());
  sim.on_store(0, 0, 4);
  sim.reset();
  EXPECT_EQ(sim.total_stats().accesses, 0u);
  EXPECT_EQ(sim.resident_lines(), 0u);
  sim.on_load(0, 0, 4);
  EXPECT_EQ(sim.stats(0).misses, 1u);
}

TEST(CacheSimulator, PerStructureAttribution) {
  CacheSimulator sim(tiny());
  sim.on_load(3, 0, 4);
  sim.on_load(7, 16, 4);
  EXPECT_EQ(sim.stats(3).misses, 1u);
  EXPECT_EQ(sim.stats(7).misses, 1u);
  EXPECT_EQ(sim.stats(4).accesses, 0u);
  EXPECT_EQ(sim.total_stats().misses, 2u);
}

TEST(CacheSimulator, UnattributedAccessesLandInTotals) {
  CacheSimulator sim(tiny());
  sim.on_load(kNoDs, 0, 4);
  EXPECT_EQ(sim.stats(kNoDs).misses, 1u);
  EXPECT_EQ(sim.total_stats().misses, 1u);
}

TEST(CacheSimulator, WorkingSetWithinCapacityNeverMissesTwice) {
  // 2 sets * 2 ways * 16B = 64B capacity: a 64-byte working set fits.
  CacheSimulator sim(tiny());
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t addr = 0; addr < 64; addr += 16) {
      sim.on_load(0, addr, 4);
    }
  }
  EXPECT_EQ(sim.stats(0).misses, 4u);
  EXPECT_EQ(sim.stats(0).hits, 36u);
}

TEST(CacheSimulator, CyclicOverCapacityThrashesUnderLru) {
  // 3 blocks cycling through a 2-way set: LRU evicts the block about to be
  // used, so every access misses.
  CacheSimulator sim({"one-set", 2, 1, 16});
  for (int round = 0; round < 5; ++round) {
    sim.on_load(0, 0, 4);
    sim.on_load(0, 16, 4);
    sim.on_load(0, 32, 4);
  }
  EXPECT_EQ(sim.stats(0).hits, 0u);
  EXPECT_EQ(sim.stats(0).misses, 15u);
}

TEST(CacheSimulator, ZeroSizeAccessRejected) {
  CacheSimulator sim(tiny());
  EXPECT_THROW(sim.access(0, 0, false, 0), InvalidArgumentError);
}

TEST(CacheConfig, DerivedQuantities) {
  const CacheConfig c = caches::small_verification();
  EXPECT_EQ(c.capacity_bytes(), 8u * 1024u);
  EXPECT_EQ(c.total_blocks(), 256u);
  EXPECT_EQ(c.set_of(0), 0u);
  EXPECT_EQ(c.set_of(32), 1u);
  EXPECT_EQ(c.block_of(63), 1u);
}

TEST(CacheConfig, RejectsBadGeometry) {
  EXPECT_THROW(CacheConfig("bad", 0, 4, 32), InvalidArgumentError);
  EXPECT_THROW(CacheConfig("bad", 4, 0, 32), InvalidArgumentError);
  EXPECT_THROW(CacheConfig("bad", 4, 4, 48), InvalidArgumentError);
}

// --- Hot-path fast set indexing (mask vs modulo) ---------------------------
//
// An independent, geometry-agnostic reference: true-LRU with explicit
// timestamps, set index always computed with the modulo definition. The
// production simulator must match it both when it takes the power-of-two
// mask path and when it falls back to modulo.
class ReferenceLru {
 public:
  explicit ReferenceLru(const CacheConfig& config) : config_(config) {
    ways_.resize(static_cast<std::size_t>(config.num_sets()) *
                 config.associativity());
  }

  void access(std::uint64_t address, std::uint32_t size, bool is_write,
              DsId ds) {
    const std::uint64_t first = address / config_.line_bytes();
    const std::uint64_t last = (address + size - 1) / config_.line_bytes();
    for (std::uint64_t block = first; block <= last; ++block) {
      touch(block, is_write, ds);
    }
  }

  void flush() {
    for (Way& way : ways_) {
      if (way.valid && way.dirty) {
        ++stats_[way.owner].writebacks;
      }
      way = Way{};
    }
  }

  [[nodiscard]] CacheStats stats(DsId ds) const {
    const auto it = stats_.find(ds);
    return it == stats_.end() ? CacheStats{} : it->second;
  }

 private:
  struct Way {
    std::uint64_t block = 0;
    std::uint64_t tick = 0;
    DsId owner = kNoDs;
    bool valid = false;
    bool dirty = false;
  };

  void touch(std::uint64_t block, bool is_write, DsId ds) {
    ++tick_;
    CacheStats& st = stats_[ds];
    ++st.accesses;
    const std::uint64_t set = block % config_.num_sets();
    Way* begin = ways_.data() + set * config_.associativity();
    Way* end = begin + config_.associativity();
    Way* victim = begin;
    for (Way* way = begin; way != end; ++way) {
      if (way->valid && way->block == block) {
        ++st.hits;
        way->tick = tick_;
        way->dirty = way->dirty || is_write;
        way->owner = ds;
        return;
      }
      if (victim->valid && (!way->valid || way->tick < victim->tick)) {
        victim = way;
      }
    }
    ++st.misses;
    if (victim->valid && victim->dirty) {
      ++stats_[victim->owner].writebacks;
    }
    *victim = {block, tick_, ds, true, is_write};
  }

  CacheConfig config_;
  std::vector<Way> ways_;
  std::map<DsId, CacheStats> stats_;
  std::uint64_t tick_ = 0;
};

std::vector<MemoryRecord> mixed_reference_string() {
  std::vector<MemoryRecord> records;
  Xoshiro256 rng(42);
  std::uint64_t addr = 0;
  for (int i = 0; i < 20000; ++i) {
    const bool random = (i % 3) == 0;
    addr = random ? rng.below(1u << 16) : addr + 8;
    records.push_back({addr, 8, static_cast<DsId>(i % 4), (i % 5) == 0});
  }
  // A few line-spanning and wide accesses.
  for (int i = 0; i < 64; ++i) {
    records.push_back({rng.below(1u << 16), 64, 2, (i & 1) != 0});
  }
  return records;
}

void expect_same_stats(CacheSimulator& sim, ReferenceLru& ref, DsId ds) {
  const CacheStats a = sim.stats(ds);
  const CacheStats b = ref.stats(ds);
  EXPECT_EQ(a.accesses, b.accesses) << "ds=" << ds;
  EXPECT_EQ(a.hits, b.hits) << "ds=" << ds;
  EXPECT_EQ(a.misses, b.misses) << "ds=" << ds;
  EXPECT_EQ(a.writebacks, b.writebacks) << "ds=" << ds;
}

class CacheSimulatorFastPath : public ::testing::TestWithParam<CacheConfig> {};

TEST_P(CacheSimulatorFastPath, MatchesReferenceLru) {
  const CacheConfig config = GetParam();
  CacheSimulator sim(config);
  ReferenceLru ref(config);
  for (const MemoryRecord& r : mixed_reference_string()) {
    sim.access(r.address, r.size, r.is_write, r.ds);
    ref.access(r.address, r.size, r.is_write, r.ds);
  }
  sim.flush();
  ref.flush();
  for (DsId ds = 0; ds < 4; ++ds) {
    expect_same_stats(sim, ref, ds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    MaskAndModuloPaths, CacheSimulatorFastPath,
    ::testing::Values(
        CacheConfig("pow2-64set", 4, 64, 32),    // mask path
        CacheConfig("mod-60set", 4, 60, 32),     // modulo fallback
        CacheConfig("pow2-1set", 2, 1, 16),      // degenerate mask (sets=1)
        CacheConfig("mod-3set", 2, 3, 16)),      // tiny non-pow2
    [](const ::testing::TestParamInfo<CacheConfig>& param_info) {
      std::string name = param_info.param.name();
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

TEST(CacheSimulatorReplay, BatchedReplayMatchesPerCallAccess) {
  const auto records = mixed_reference_string();
  CacheSimulator one_by_one(caches::small_verification());
  for (const MemoryRecord& r : records) {
    one_by_one.access(r.address, r.size, r.is_write, r.ds);
  }
  one_by_one.flush();

  CacheSimulator batched(caches::small_verification());
  batched.replay(records);
  batched.flush();

  for (DsId ds = 0; ds < 4; ++ds) {
    const CacheStats a = one_by_one.stats(ds);
    const CacheStats b = batched.stats(ds);
    EXPECT_EQ(a.accesses, b.accesses);
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.writebacks, b.writebacks);
  }
}

TEST(CacheSimulatorReplay, SkipsZeroSizedRecords) {
  CacheSimulator sim(tiny());
  const std::vector<MemoryRecord> records = {{0, 0, 0, false}, {0, 8, 0, false}};
  sim.replay(records);
  EXPECT_EQ(sim.stats(0).accesses, 1u);
}

TEST(CacheSimulatorStats, RegistryConstructorPreSizesTheTable) {
  DataStructureRegistry registry;
  double a[64] = {};
  double b[64] = {};
  registry.register_structure("A", a, sizeof(a), sizeof(double));
  registry.register_structure("B", b, sizeof(b), sizeof(double));
  CacheSimulator sim(tiny(), registry);
  sim.on_load(1, 0, 4);
  EXPECT_EQ(sim.stats(1).accesses, 1u);
  EXPECT_EQ(sim.stats(0).accesses, 0u);
}

// --- Replacement policies --------------------------------------------------

TEST(ReplacementPolicyNames, RoundTripThroughParser) {
  for (const ReplacementPolicy policy :
       {ReplacementPolicy::kLru, ReplacementPolicy::kPlru,
        ReplacementPolicy::kRrip}) {
    const auto parsed = parse_policy(policy_name(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(parse_policy("fifo").has_value());
  EXPECT_FALSE(parse_policy("LRU").has_value());
  EXPECT_FALSE(parse_policy("").has_value());
}

// With 2 ways, the bit-PLRU MRU bit identifies the LRU way exactly, so the
// approximation collapses to true LRU. A long mixed stream must agree.
TEST(ReplacementPolicy, PlruEqualsLruAtTwoWays) {
  const CacheConfig config("two-way", 2, 64, 32);
  CacheSimulator lru(config, ReplacementPolicy::kLru);
  CacheSimulator plru(config, ReplacementPolicy::kPlru);
  for (const MemoryRecord& r : mixed_reference_string()) {
    lru.access(r.address, r.size, r.is_write, r.ds);
    plru.access(r.address, r.size, r.is_write, r.ds);
  }
  lru.flush();
  plru.flush();
  for (DsId ds = 0; ds < 4; ++ds) {
    const CacheStats a = lru.stats(ds);
    const CacheStats b = plru.stats(ds);
    EXPECT_EQ(a.hits, b.hits) << "ds=" << ds;
    EXPECT_EQ(a.misses, b.misses) << "ds=" << ds;
    EXPECT_EQ(a.writebacks, b.writebacks) << "ds=" << ds;
  }
}

// Loads block `b` of a one-set cache with 16-byte lines.
void load_block(CacheSimulator& sim, std::uint64_t block) {
  sim.on_load(0, block * 16, 4);
}

// Hand-computed divergence, 4-way single set, sequence [1,2,3,4,1,2,3,5]:
//
//   bit-PLRU: filling 4 saturates the MRU bits ({0,0,0,1} after the clear);
//   hits on 1 and 2 set their bits; the hit on 3 saturates again, leaving
//   {0,0,1,0}. The miss on 5 takes the first clear way — way 0, BLOCK 1.
//   True LRU instead evicts BLOCK 4 (stalest timestamp).
TEST(ReplacementPolicy, PlruPinnedSequenceDivergesFromLru) {
  const CacheConfig config("one-set4", 4, 1, 16);
  for (const auto policy :
       {ReplacementPolicy::kPlru, ReplacementPolicy::kLru}) {
    CacheSimulator sim(config, policy);
    for (const std::uint64_t block : {1, 2, 3, 4, 1, 2, 3, 5}) {
      load_block(sim, block);
    }
    EXPECT_EQ(sim.stats(0).misses, 5u);
    const std::uint64_t misses_before = sim.stats(0).misses;
    load_block(sim, 4);  // PLRU: resident. LRU: evicted.
    load_block(sim, 1);  // PLRU: evicted. LRU: resident... until 4 refilled.
    if (policy == ReplacementPolicy::kPlru) {
      EXPECT_EQ(sim.stats(0).misses, misses_before + 1) << "victim must be 1";
    } else {
      EXPECT_EQ(sim.stats(0).misses, misses_before + 2)
          << "LRU evicts 4, and refilling 4 displaces 1";
    }
  }
}

// Hand-computed divergence, 4-way single set, sequence [1,2,3,4,1,5,3,6,7]:
//
//   2-bit SRRIP: fills insert at RRPV 2, the hit on 1 promotes it to 0; the
//   miss on 5 ages everyone and replaces block 2; the miss on 6 finds block
//   4 already distant; the miss on 7 ages again and replaces BLOCK 5,
//   keeping block 1 resident (its early promotion still protects it).
//   True LRU instead evicts BLOCK 1 at the miss on 7 (stalest) and keeps 5.
TEST(ReplacementPolicy, RripPinnedSequenceDivergesFromLru) {
  const CacheConfig config("one-set4", 4, 1, 16);
  for (const auto policy :
       {ReplacementPolicy::kRrip, ReplacementPolicy::kLru}) {
    CacheSimulator sim(config, policy);
    for (const std::uint64_t block : {1, 2, 3, 4, 1, 5, 3, 6, 7}) {
      load_block(sim, block);
    }
    EXPECT_EQ(sim.stats(0).misses, 7u);
    EXPECT_EQ(sim.stats(0).hits, 2u);
    const std::uint64_t hits_before = sim.stats(0).hits;
    load_block(sim, policy == ReplacementPolicy::kRrip ? 1 : 5);
    EXPECT_EQ(sim.stats(0).hits, hits_before + 1)
        << policy_name(policy) << " kept the wrong line resident";
  }
}

TEST(ReplacementPolicy, RripSingleWayStillTerminates) {
  // Degenerate associativity: the victim search must age RRPV up to the
  // distant value and terminate, not spin.
  CacheSimulator sim(CacheConfig("direct", 1, 2, 16),
                     ReplacementPolicy::kRrip);
  for (int i = 0; i < 16; ++i) {
    load_block(sim, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(sim.stats(0).misses, 16u);
}

TEST(ReplacementPolicy, PolicyAccessorReportsConstructionChoice) {
  EXPECT_EQ(CacheSimulator(tiny()).policy(), ReplacementPolicy::kLru);
  EXPECT_EQ(CacheSimulator(tiny(), ReplacementPolicy::kRrip).policy(),
            ReplacementPolicy::kRrip);
}

TEST(CacheSimulatorStats, ReservedTableKeepsTalliesAndSurvivesReset) {
  CacheSimulator sim(tiny());
  sim.on_load(7, 0, 4);  // grows the table past id 7 on the cold path
  sim.reserve_structures(32);
  EXPECT_EQ(sim.stats(7).accesses, 1u);  // growth kept existing tallies
  EXPECT_EQ(sim.stats(31).accesses, 0u);
  sim.reset();
  EXPECT_EQ(sim.stats(7).accesses, 0u);
  sim.on_load(31, 0, 4);  // pre-sized: still correctly attributed
  EXPECT_EQ(sim.stats(31).accesses, 1u);
}

}  // namespace
}  // namespace dvf
