// Unit tests for the DVF calculator (Eqs. 1–2).
#include "dvf/dvf/calculator.hpp"

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"
#include "dvf/common/units.hpp"
#include "dvf/machine/cache_config.hpp"

namespace dvf {
namespace {

ModelSpec streaming_model() {
  ModelSpec model;
  model.name = "test";
  model.exec_time_seconds = 2.0;
  DataStructureSpec ds;
  ds.name = "A";
  ds.size_bytes = 80000;
  StreamingSpec s;
  s.element_bytes = 8;
  s.element_count = 10000;
  s.stride_elements = 1;
  ds.patterns.emplace_back(s);
  model.structures.push_back(std::move(ds));
  return model;
}

Machine machine() { return Machine::with_cache(caches::small_verification()); }

TEST(Calculator, Eq1DecomposesAsDocumented) {
  const DvfCalculator calc(machine());
  const ModelSpec model = streaming_model();
  const StructureDvf result = calc.for_structure(model.structures[0], 2.0);

  EXPECT_EQ(result.name, "A");
  EXPECT_DOUBLE_EQ(result.size_bytes, 80000.0);
  EXPECT_DOUBLE_EQ(result.n_ha, 2500.0);  // 80000 B / 32 B lines
  EXPECT_DOUBLE_EQ(result.n_error, expected_errors(5000.0, 2.0, 80000.0));
  EXPECT_DOUBLE_EQ(result.dvf, result.n_error * result.n_ha);
}

TEST(Calculator, Eq2SumsStructures) {
  const DvfCalculator calc(machine());
  ModelSpec model = streaming_model();
  model.structures.push_back(model.structures[0]);
  model.structures[1].name = "B";
  const ApplicationDvf app = calc.for_model(model);
  ASSERT_EQ(app.structures.size(), 2u);
  EXPECT_DOUBLE_EQ(app.total, app.structures[0].dvf + app.structures[1].dvf);
  EXPECT_NE(app.find("B"), nullptr);
  EXPECT_EQ(app.find("missing"), nullptr);
}

TEST(Calculator, DvfLinearInTime) {
  const DvfCalculator calc(machine());
  const ModelSpec model = streaming_model();
  const double at2 = calc.for_model(model, 2.0).total;
  const double at4 = calc.for_model(model, 4.0).total;
  EXPECT_DOUBLE_EQ(at4, 2.0 * at2);
}

TEST(Calculator, DvfLinearInFit) {
  const ModelSpec model = streaming_model();
  const DvfCalculator raw(Machine("m1", caches::small_verification(),
                                  MemoryModel(5000.0)));
  const DvfCalculator tenth(Machine("m2", caches::small_verification(),
                                    MemoryModel(500.0)));
  EXPECT_DOUBLE_EQ(raw.for_model(model).total,
                   10.0 * tenth.for_model(model).total);
}

TEST(Calculator, CompositePatternsSumTheirPhases) {
  const DvfCalculator calc(machine());
  ModelSpec model = streaming_model();
  const double single = calc.for_model(model).total;
  model.structures[0].patterns.push_back(model.structures[0].patterns[0]);
  EXPECT_DOUBLE_EQ(calc.for_model(model).total, 2.0 * single);
}

TEST(Calculator, MissingTimeIsAnError) {
  const DvfCalculator calc(machine());
  ModelSpec model = streaming_model();
  model.exec_time_seconds.reset();
  EXPECT_THROW((void)calc.for_model(model), SemanticError);
  EXPECT_NO_THROW((void)calc.for_model(model, 1.0));
}

TEST(Calculator, RejectsNegativeTimeAndEmptyStructures) {
  const DvfCalculator calc(machine());
  const ModelSpec model = streaming_model();
  EXPECT_THROW((void)calc.for_structure(model.structures[0], -1.0),
               InvalidArgumentError);
  DataStructureSpec empty;
  empty.name = "zero";
  EXPECT_THROW((void)calc.for_structure(empty, 1.0), InvalidArgumentError);
}

TEST(ModelSpec, WorkingSetAndLookup) {
  ModelSpec model = streaming_model();
  model.structures.push_back(model.structures[0]);
  model.structures[1].name = "B";
  model.structures[1].size_bytes = 20000;
  EXPECT_EQ(model.working_set_bytes(), 100000u);
  EXPECT_NE(model.find("A"), nullptr);
  EXPECT_EQ(model.find("C"), nullptr);
}

}  // namespace
}  // namespace dvf
