// Fault-tolerant campaign runner: outcome taxonomy on a purpose-built
// misbehaving kernel, crash-safe journal checkpoint/resume, and adaptive
// (Wilson-CI) early stopping — all under the engine's bit-identical
// determinism guarantee.
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"
#include "dvf/kernels/campaign_journal.hpp"
#include "dvf/kernels/injection_campaign.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/kernels/vm.hpp"

namespace dvf {
namespace {

using kernels::CampaignConfig;
using kernels::StructureInjectionStats;
using kernels::TrialOutcome;

// --- A kernel that misbehaves on demand ------------------------------------
//
// Three 32-bit control words steer the run: a flip landing in flags[0]
// makes it throw, in flags[1] makes it issue `runaway` extra references
// (a data-dependent "hang"), in flags[2] poisons the output with NaN.
// flags[3] and the payload behave like a normal kernel (masked / SDC).
// The flags are read AFTER the payload, so almost every trigger lands
// before the read and the misbehavior actually fires.
class MisbehavingKernel {
 public:
  using Element = std::int32_t;

  struct Config {
    std::uint64_t payload = 16;    ///< well-behaved references per run
    std::uint64_t runaway = 4096;  ///< extra references when flags[1] flips
  };

  explicit MisbehavingKernel(const Config& config)
      : config_(config), flags_(4), data_(config.payload) {
    for (std::size_t i = 0; i < data_.size(); ++i) {
      data_[i] = static_cast<Element>(i % 9 + 1);
    }
    flags_id_ = registry_.register_structure("flags", flags_.data(),
                                             flags_.size_bytes(),
                                             sizeof(Element));
    data_id_ = registry_.register_structure("data", data_.data(),
                                            data_.size_bytes(),
                                            sizeof(Element));
  }

  template <RecorderLike R>
  void run(R& rec) {
    double acc = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
      kernels::load(rec, data_id_, data_, i);
      acc += static_cast<double>(data_[i]);
    }
    for (std::size_t i = 0; i < 3; ++i) {
      kernels::load(rec, flags_id_, flags_, i);
    }
    if (flags_[0] != 0) {
      throw std::runtime_error("misbehaving kernel: corrupted control word");
    }
    if (flags_[1] != 0) {
      for (std::uint64_t i = 0; i < config_.runaway; ++i) {
        kernels::load(rec, data_id_, data_, i % data_.size());
      }
    }
    signature_ = flags_[2] != 0
                     ? std::numeric_limits<double>::quiet_NaN()
                     : acc;
  }

  void reset() { signature_ = 0.0; }
  [[nodiscard]] double output_signature() const { return signature_; }

  [[nodiscard]] ModelSpec model_spec() const {
    ModelSpec spec;
    spec.name = "MISBEHAVE";
    const auto add = [&](const char* name, std::uint64_t elements) {
      DataStructureSpec ds;
      ds.name = name;
      ds.size_bytes = elements * sizeof(Element);
      StreamingSpec stream;
      stream.element_bytes = sizeof(Element);
      stream.element_count = elements;
      stream.stride_elements = 1;
      ds.patterns.emplace_back(stream);
      spec.structures.push_back(std::move(ds));
    };
    add("flags", flags_.size());
    add("data", data_.size());
    return spec;
  }

  [[nodiscard]] const DataStructureRegistry& registry() const noexcept {
    return registry_;
  }

 private:
  Config config_;
  AlignedBuffer<Element> flags_;
  AlignedBuffer<Element> data_;
  DataStructureRegistry registry_;
  DsId flags_id_{};
  DsId data_id_{};
  double signature_ = 0.0;
};

using MisbehavingCase = kernels::KernelCaseAdapter<MisbehavingKernel>;

MisbehavingCase make_misbehaving() {
  return MisbehavingCase("MISBEHAVE", "test", MisbehavingKernel::Config{});
}

// --- Trial classification --------------------------------------------------

TEST(TrialClassification, ThrowingTrialIsDueExceptionAndContained) {
  auto kernel = make_misbehaving();
  const auto flags = *kernel.registry().find("flags");
  // Flip bit 0 of flags[0] before anything runs: the kernel throws.
  const auto outcome = kernel.run_injected(flags, 1, 0, 0);
  EXPECT_TRUE(outcome.injected);
  EXPECT_TRUE(outcome.corrupted);
  EXPECT_EQ(outcome.classification, TrialOutcome::kDueException);
  // Contained: the same kernel instance runs a clean trial right after.
  const auto clean =
      kernel.run_injected(flags, kernel.total_references(), 12, 0);
  EXPECT_EQ(clean.classification, TrialOutcome::kMasked);
}

TEST(TrialClassification, RunawayTrialIsDueHangUnderABudget) {
  auto kernel = make_misbehaving();
  const auto flags = *kernel.registry().find("flags");
  const std::uint64_t golden = kernel.total_references();
  // flags[1] flip triggers 4096 extra references; a 2x budget catches it.
  const auto outcome = kernel.run_injected(flags, 1, 4, 0, 2 * golden);
  EXPECT_TRUE(outcome.injected);
  EXPECT_TRUE(outcome.corrupted);
  EXPECT_EQ(outcome.classification, TrialOutcome::kDueHang);
}

TEST(TrialClassification, RunawayTrialWithoutBudgetRunsToCompletion) {
  auto kernel = make_misbehaving();
  const auto flags = *kernel.registry().find("flags");
  // No budget: the runaway loop finishes and the output is untouched, so
  // the very same flip classifies masked — the budget is what turns
  // "suspiciously long" into a detected hang.
  const auto outcome = kernel.run_injected(flags, 1, 4, 0);
  EXPECT_TRUE(outcome.injected);
  EXPECT_EQ(outcome.classification, TrialOutcome::kMasked);
}

TEST(TrialClassification, NanOutputIsDueInvalid) {
  auto kernel = make_misbehaving();
  const auto flags = *kernel.registry().find("flags");
  const auto outcome = kernel.run_injected(flags, 1, 8, 0);
  EXPECT_TRUE(outcome.injected);
  EXPECT_TRUE(outcome.corrupted);
  EXPECT_EQ(outcome.classification, TrialOutcome::kDueInvalid);
  EXPECT_TRUE(std::isinf(outcome.deviation));
}

TEST(TrialClassification, DataFlipIsPlainSdc) {
  auto kernel = make_misbehaving();
  const auto data = *kernel.registry().find("data");
  // Flip a high bit of data[0] before its only read.
  const auto outcome = kernel.run_injected(data, 1, 2, 7);
  EXPECT_TRUE(outcome.injected);
  EXPECT_EQ(outcome.classification, TrialOutcome::kSdc);
  EXPECT_GT(outcome.deviation, 0.0);
  EXPECT_TRUE(std::isfinite(outcome.deviation));
}

TEST(TrialClassification, OutcomeLabelsRoundTrip) {
  for (const TrialOutcome outcome :
       {TrialOutcome::kMasked, TrialOutcome::kSdc, TrialOutcome::kDueException,
        TrialOutcome::kDueHang, TrialOutcome::kDueInvalid}) {
    const auto back = kernels::trial_outcome_from_string(to_string(outcome));
    ASSERT_TRUE(back.has_value()) << to_string(outcome);
    EXPECT_EQ(*back, outcome);
  }
  EXPECT_FALSE(kernels::trial_outcome_from_string("nonsense").has_value());
}

// --- Campaign-level fault tolerance ----------------------------------------

void expect_stats_equal(const std::vector<StructureInjectionStats>& a,
                        const std::vector<StructureInjectionStats>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].structure, b[i].structure) << label;
    EXPECT_EQ(a[i].trials, b[i].trials) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].injected, b[i].injected) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].masked, b[i].masked) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].sdc, b[i].sdc) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].due_exception, b[i].due_exception)
        << label << " " << a[i].structure;
    EXPECT_EQ(a[i].due_hang, b[i].due_hang) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].due_invalid, b[i].due_invalid)
        << label << " " << a[i].structure;
    EXPECT_EQ(a[i].corrupted, b[i].corrupted)
        << label << " " << a[i].structure;
    EXPECT_EQ(a[i].early_stopped, b[i].early_stopped)
        << label << " " << a[i].structure;
  }
}

TEST(CampaignResilience, MisbehavingTrialsAreClassifiedNotFatal) {
  auto kernel = make_misbehaving();
  CampaignConfig config;
  config.trials_per_structure = 64;
  config.hang_factor = 2.0;

  const auto stats = kernels::run_injection_campaign(kernel, config);
  ASSERT_EQ(stats.size(), 2u);  // flags, data

  const StructureInjectionStats& flags = stats[0];
  EXPECT_EQ(flags.structure, "flags");
  // Every class partitions the trial count.
  EXPECT_EQ(flags.masked + flags.sdc + flags.due_exception + flags.due_hang +
                flags.due_invalid,
            flags.trials);
  EXPECT_EQ(flags.corrupted, flags.trials - flags.masked);
  // Fault sites are uniform over 16 flag bytes, so each control word takes
  // ~1/4 of the trials and every misbehavior class must show up.
  EXPECT_GT(flags.due_exception, 0u);
  EXPECT_GT(flags.due_hang, 0u);
  EXPECT_GT(flags.due_invalid, 0u);
  EXPECT_GT(flags.masked, 0u);  // flags[3] flips and post-read triggers

  const StructureInjectionStats& data = stats[1];
  EXPECT_EQ(data.structure, "data");
  EXPECT_EQ(data.due_exception, 0u);
  EXPECT_EQ(data.due_hang, 0u);
  EXPECT_GT(data.sdc, 0u);
  EXPECT_EQ(data.sdc, data.corrupted);
}

TEST(CampaignResilience, MisbehavingCampaignBitIdenticalAcrossThreads) {
  CampaignConfig config;
  config.trials_per_structure = 48;
  config.hang_factor = 2.0;

  auto reference_kernel = make_misbehaving();
  config.threads = 1;
  const auto reference =
      kernels::run_injection_campaign(reference_kernel, config);
  for (const unsigned threads : {2u, 4u}) {
    auto kernel = make_misbehaving();
    config.threads = threads;
    const auto stats = kernels::run_injection_campaign(kernel, config);
    expect_stats_equal(stats, reference,
                       "threads=" + std::to_string(threads));
  }
}

// --- Journal format --------------------------------------------------------

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "dvf_" + name + "." +
         std::to_string(::getpid()) + ".journal";
}

kernels::CampaignJournalHeader sample_header() {
  kernels::CampaignJournalHeader header;
  header.kernel = "VM";
  header.seed = 2014;
  header.trials_per_structure = 10;
  header.hang_factor = 8.0;
  header.ci_width = 0.05;
  header.batch_trials = 50;
  header.targets = {{0, "A"}, {1, "B"}, {2, "C"}};
  return header;
}

TEST(CampaignJournal, HeaderAndEntriesRoundTrip) {
  const std::string path = temp_path("roundtrip");
  const auto header = sample_header();
  {
    kernels::CampaignJournalWriter writer(path, header);
    EXPECT_TRUE(writer.record({0, 0, TrialOutcome::kMasked, true}).ok());
    EXPECT_TRUE(writer.record({1, 3, TrialOutcome::kSdc, true}).ok());
    EXPECT_TRUE(writer.record({2, 9, TrialOutcome::kDueHang, false}).ok());
  }
  const auto contents = kernels::read_campaign_journal(path);
  EXPECT_EQ(contents.header, header);
  EXPECT_FALSE(contents.torn_tail);
  ASSERT_EQ(contents.entries.size(), 3u);
  EXPECT_EQ(contents.entries[1].target, 1u);
  EXPECT_EQ(contents.entries[1].trial, 3u);
  EXPECT_EQ(contents.entries[1].outcome, TrialOutcome::kSdc);
  EXPECT_TRUE(contents.entries[1].injected);
  EXPECT_EQ(contents.entries[2].outcome, TrialOutcome::kDueHang);
  EXPECT_FALSE(contents.entries[2].injected);
  std::remove(path.c_str());
}

TEST(CampaignJournal, TornTailIsDroppedAndTruncatable) {
  const std::string path = temp_path("torn");
  {
    kernels::CampaignJournalWriter writer(path, sample_header());
    EXPECT_TRUE(writer.record({0, 0, TrialOutcome::kMasked, true}).ok());
    EXPECT_TRUE(writer.record({0, 1, TrialOutcome::kSdc, true}).ok());
  }
  // Simulate a kill mid-write: a partial line without its newline.
  std::uint64_t valid = 0;
  {
    const auto intact = kernels::read_campaign_journal(path);
    valid = intact.valid_bytes;
    std::ofstream out(path, std::ios::app);
    out << "trial 0 2 sd";
  }
  const auto contents = kernels::read_campaign_journal(path);
  EXPECT_TRUE(contents.torn_tail);
  ASSERT_EQ(contents.entries.size(), 2u);
  EXPECT_EQ(contents.valid_bytes, valid);

  // A resume writer truncates the tail; the file parses clean again.
  {
    kernels::CampaignJournalWriter writer(path, contents.valid_bytes);
    EXPECT_TRUE(writer.record({0, 2, TrialOutcome::kSdc, true}).ok());
  }
  const auto repaired = kernels::read_campaign_journal(path);
  EXPECT_FALSE(repaired.torn_tail);
  ASSERT_EQ(repaired.entries.size(), 3u);
  EXPECT_EQ(repaired.entries[2].trial, 2u);
  std::remove(path.c_str());
}

TEST(CampaignJournal, RejectsForeignFilesAndBadHeaders) {
  const std::string path = temp_path("bad");
  {
    std::ofstream out(path);
    out << "not a journal\n";
  }
  EXPECT_THROW((void)kernels::read_campaign_journal(path), Error);
  std::remove(path.c_str());
  EXPECT_THROW((void)kernels::read_campaign_journal(path), Error);
}

// --- Checkpoint / resume ---------------------------------------------------

std::unique_ptr<kernels::KernelCase> make_vm() {
  return std::make_unique<kernels::KernelCaseAdapter<kernels::VectorMultiply>>(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 120});
}

TEST(CampaignResume, KilledCampaignResumesBitIdentical) {
  for (const unsigned threads : {1u, 4u}) {
    const std::string label = "threads=" + std::to_string(threads);
    const std::string full_path = temp_path("full_t" + std::to_string(threads));
    CampaignConfig config;
    config.trials_per_structure = 24;
    config.threads = threads;
    config.journal_path = full_path;

    auto full_kernel = make_vm();
    const auto full = kernels::run_injection_campaign(*full_kernel, config);

    // Simulate a mid-run kill: keep the header plus the first 20 trial
    // lines, then a torn partial line.
    const std::string killed_path =
        temp_path("killed_t" + std::to_string(threads));
    {
      std::ifstream in(full_path);
      std::ofstream out(killed_path);
      std::string line;
      std::size_t trials_kept = 0;
      while (std::getline(in, line)) {
        const bool is_trial = line.rfind("trial ", 0) == 0;
        if (is_trial && ++trials_kept > 20) {
          break;
        }
        out << line << "\n";
      }
      out << "trial 1 7";  // torn tail, no newline
    }

    config.journal_path = killed_path;
    config.resume = true;
    auto resumed_kernel = make_vm();
    const auto resumed =
        kernels::run_injection_campaign(*resumed_kernel, config);
    expect_stats_equal(resumed, full, label + " resumed");

    // The repaired journal is now complete: a second resume replays it
    // without running anything and still matches.
    const auto journal = kernels::read_campaign_journal(killed_path);
    EXPECT_FALSE(journal.torn_tail) << label;
    EXPECT_EQ(journal.entries.size(), 3u * 24u) << label;
    auto replayed_kernel = make_vm();
    const auto replayed =
        kernels::run_injection_campaign(*replayed_kernel, config);
    expect_stats_equal(replayed, full, label + " replayed");

    std::remove(full_path.c_str());
    std::remove(killed_path.c_str());
  }
}

TEST(CampaignResume, RefusesMismatchedJournal) {
  const std::string path = temp_path("mismatch");
  CampaignConfig config;
  config.trials_per_structure = 6;
  config.journal_path = path;
  auto kernel = make_vm();
  (void)kernels::run_injection_campaign(*kernel, config);

  config.resume = true;
  config.seed = 7;  // different stream → the journal must be refused
  auto other = make_vm();
  EXPECT_THROW((void)kernels::run_injection_campaign(*other, config), Error);
  std::remove(path.c_str());
}

TEST(CampaignResume, ResumeWithoutJournalPathIsRejected) {
  CampaignConfig config;
  config.resume = true;
  auto kernel = make_vm();
  EXPECT_THROW((void)kernels::run_injection_campaign(*kernel, config),
               InvalidArgumentError);
}

// --- Adaptive early stopping -----------------------------------------------

TEST(CampaignAdaptiveStop, ConvergedStructuresStopEarlyDeterministically) {
  CampaignConfig config;
  config.trials_per_structure = 400;
  config.ci_width = 0.12;
  config.batch_trials = 20;

  auto reference_kernel = make_vm();
  config.threads = 1;
  const auto reference =
      kernels::run_injection_campaign(*reference_kernel, config);
  ASSERT_EQ(reference.size(), 3u);
  for (const auto& s : reference) {
    // Every VM structure's SDC rate pins down well before 400 trials.
    EXPECT_TRUE(s.early_stopped) << s.structure;
    EXPECT_LT(s.trials, 400u) << s.structure;
    EXPECT_GE(s.trials, 20u) << s.structure;
    // The stopper's promise: the CI it stopped on is below the target.
    EXPECT_LT(s.sdc_ci_half_width(), 0.12) << s.structure;
    // Trial counts are batch-aligned (deterministic boundaries).
    EXPECT_EQ(s.trials % 20, 0u) << s.structure;
  }

  config.threads = 4;
  auto kernel = make_vm();
  const auto stats = kernels::run_injection_campaign(*kernel, config);
  expect_stats_equal(stats, reference, "adaptive threads=4");
}

TEST(CampaignAdaptiveStop, DisabledStopperRunsEveryTrial) {
  CampaignConfig config;
  config.trials_per_structure = 30;
  config.ci_width = 0.0;
  auto kernel = make_vm();
  const auto stats = kernels::run_injection_campaign(*kernel, config);
  for (const auto& s : stats) {
    EXPECT_EQ(s.trials, 30u);
    EXPECT_FALSE(s.early_stopped);
  }
}

}  // namespace
}  // namespace dvf
