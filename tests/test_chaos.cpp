// Chaos harness: environment-fault injection through the failpoint
// subsystem (docs/resilience.md "Environment-fault injection").
//
// Where test_campaign_resilience.cpp injects faults into *application data*
// (the paper's methodology), these suites inject faults into the
// infrastructure itself — journal writes, trace export, serve evaluation,
// thread spawn, artifact writes — and assert the standing invariants: no
// crash, campaign statistics bit-identical with and without environment
// faults, journal resume exact after a failure at every record boundary,
// exactly one well-formed typed response per serve request, and counters
// conserved. Every suite name starts with "Chaos" so the TSan CI flavor
// can select them with a gtest filter.
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"
#include "dvf/common/failpoint.hpp"
#include "dvf/common/result.hpp"
#include "dvf/common/robust_io.hpp"
#include "dvf/kernels/campaign_journal.hpp"
#include "dvf/kernels/injection_campaign.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/parallel/parallel_for.hpp"
#include "dvf/parallel/thread_pool.hpp"
#include "dvf/serve/engine.hpp"
#include "dvf/serve/json.hpp"
#include "dvf/trace/trace_io.hpp"

namespace dvf {
namespace {

using kernels::CampaignConfig;
using kernels::CampaignJournalEntry;
using kernels::StructureInjectionStats;
using kernels::TrialOutcome;

/// Every chaos suite runs with a clean failpoint table on entry and leaves
/// one behind, even when an assertion fails mid-test — failpoints are
/// process-global and must never leak into unrelated suites.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::clear(); }
  void TearDown() override { failpoint::clear(); }
};

void configure_or_die(const std::string& spec) {
  const Result<void> result = failpoint::configure(spec);
  ASSERT_TRUE(result.ok()) << result.error().describe();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "dvf_chaos_" + name + "." +
         std::to_string(::getpid());
}

// --- Failpoint subsystem ---------------------------------------------------

using ChaosFailpoint = ChaosTest;

TEST_F(ChaosFailpoint, DisabledPathIsInert) {
  EXPECT_FALSE(failpoint::armed());
  const failpoint::Action action = DVF_FAILPOINT("test.inert");
  EXPECT_FALSE(static_cast<bool>(action));
  // A disabled evaluation does not even count a hit.
  for (const failpoint::HitCount& count : failpoint::hit_counts()) {
    EXPECT_NE(count.name, "test.inert");
  }
}

TEST_F(ChaosFailpoint, RejectsUnknownNamesAndBadSyntax) {
  // Catalog names and "test." ad-hoc points parse; typos are refused so a
  // schedule can never silently not fire.
  EXPECT_TRUE(failpoint::configure("campaign.journal.write=error(28)@3").ok());
  EXPECT_TRUE(failpoint::configure("test.anything=throw").ok());
  EXPECT_FALSE(failpoint::configure("campain.journal.write=throw").ok());
  EXPECT_FALSE(failpoint::configure("test.x").ok());          // no '='
  EXPECT_FALSE(failpoint::configure("test.x=explode").ok());  // bad action
  EXPECT_FALSE(failpoint::configure("test.x=error(abc)").ok());
  EXPECT_FALSE(failpoint::configure("test.x=error@0").ok());  // 1-based
  EXPECT_FALSE(failpoint::configure("test.x=error%1.5").ok());
  EXPECT_FALSE(failpoint::configure("test.x=error%0.5:12junk").ok());
  const Result<void> bad = failpoint::configure("test.x=nope");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().kind, ErrorKind::kDomainError);
}

TEST_F(ChaosFailpoint, NthHitTriggerFiresExactlyOnce) {
  configure_or_die("test.nth=error(28)@3");
  EXPECT_TRUE(failpoint::armed());
  for (int hit = 1; hit <= 8; ++hit) {
    const failpoint::Action action = DVF_FAILPOINT("test.nth");
    if (hit == 3) {
      EXPECT_EQ(action.kind, failpoint::ActionKind::kError);
      EXPECT_EQ(action.error_code, 28);  // ENOSPC
    } else {
      EXPECT_FALSE(static_cast<bool>(action)) << "hit " << hit;
    }
  }
  const auto counts = failpoint::hit_counts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].name, "test.nth");
  EXPECT_EQ(counts[0].hits, 8u);
  EXPECT_EQ(counts[0].fired, 1u);
}

TEST_F(ChaosFailpoint, EveryKthTriggerFiresPeriodically) {
  configure_or_die("test.every=eintr/3");
  for (int hit = 1; hit <= 9; ++hit) {
    const failpoint::Action action = DVF_FAILPOINT("test.every");
    EXPECT_EQ(static_cast<bool>(action), hit % 3 == 0) << "hit " << hit;
  }
  const auto counts = failpoint::hit_counts();
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].fired, 3u);
}

TEST_F(ChaosFailpoint, ProbabilityTriggerIsDeterministic) {
  // The per-hit draw is a pure function of (seed, hit ordinal), so the
  // fire pattern replays exactly after a clear + reconfigure.
  const auto run_pattern = [] {
    std::vector<bool> fired;
    for (int hit = 0; hit < 64; ++hit) {
      fired.push_back(static_cast<bool>(DVF_FAILPOINT("test.prob")));
    }
    return fired;
  };
  configure_or_die("test.prob=error%0.5:2014");
  const std::vector<bool> first = run_pattern();
  failpoint::clear();
  configure_or_die("test.prob=error%0.5:2014");
  EXPECT_EQ(run_pattern(), first);
  // ~50% fire rate, deterministic: the exact count is stable, and a seeded
  // draw cannot be degenerate (all or nothing) over 64 hits.
  const auto fired = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 16u);
  EXPECT_LT(fired, 48u);

  failpoint::clear();
  configure_or_die("test.prob=error%0.5:7");
  EXPECT_NE(run_pattern(), first) << "different seed, same pattern";
}

TEST_F(ChaosFailpoint, ThrowAndBadallocActionsRaise) {
  configure_or_die("test.raise=throw");
  EXPECT_THROW((void)DVF_FAILPOINT("test.raise"), Error);
  failpoint::clear();
  configure_or_die("test.raise=badalloc");
  EXPECT_THROW((void)DVF_FAILPOINT("test.raise"), std::bad_alloc);
  failpoint::clear();
  configure_or_die("test.raise=off");
  EXPECT_FALSE(failpoint::armed());
  EXPECT_FALSE(static_cast<bool>(DVF_FAILPOINT("test.raise")));
}

TEST_F(ChaosFailpoint, HitCountersFlowIntoMetricsSnapshot) {
  configure_or_die("test.metrics=error@2");
  for (int hit = 0; hit < 3; ++hit) {
    (void)DVF_FAILPOINT("test.metrics");
  }
  const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "failpoint.test.metrics.hits") {
      hits = value;
    } else if (name == "failpoint.test.metrics.fired") {
      fired = value;
    }
  }
  EXPECT_EQ(hits, 3u);
  EXPECT_EQ(fired, 1u);
}

// --- Journal write failures at every record boundary -----------------------

using ChaosJournal = ChaosTest;

/// One record of every outcome type, with both injected values — the full
/// record-type space a journal line can carry.
std::vector<CampaignJournalEntry> all_record_types() {
  return {
      {0, 0, TrialOutcome::kMasked, true},
      {1, 1, TrialOutcome::kSdc, true},
      {2, 2, TrialOutcome::kDueException, true},
      {0, 3, TrialOutcome::kDueHang, false},
      {1, 4, TrialOutcome::kDueInvalid, true},
  };
}

kernels::CampaignJournalHeader chaos_header() {
  kernels::CampaignJournalHeader header;
  header.kernel = "VM";
  header.seed = 2014;
  header.trials_per_structure = 10;
  header.hang_factor = 8.0;
  header.ci_width = 0.05;
  header.batch_trials = 50;
  header.targets = {{0, "A"}, {1, "B"}, {2, "C"}};
  return header;
}

TEST_F(ChaosJournal, WriteFailureAtEveryBoundaryForEveryRecordType) {
  const std::vector<CampaignJournalEntry> entries = all_record_types();
  const auto header = chaos_header();
  // ENOSPC (clean stream failure) and a torn short write, each injected at
  // every record boundary; the journal must resume to the exact same file.
  for (const std::string action : {"error(28)", "short"}) {
    const bool torn = action == "short";
    for (std::size_t boundary = 1; boundary <= entries.size(); ++boundary) {
      const std::string label = action + "@" + std::to_string(boundary);
      const std::string path = temp_path("boundary_" + label);
      failpoint::clear();
      configure_or_die("campaign.journal.write=" + label);
      {
        kernels::CampaignJournalWriter writer(path, header);
        for (std::size_t i = 0; i < entries.size(); ++i) {
          const Result<void> written = writer.record(entries[i]);
          if (i + 1 < boundary) {
            EXPECT_TRUE(written.ok()) << label << " record " << i;
          } else {
            // The boundary record fails with a classified io_error and the
            // writer latches dead: later records fail the same way without
            // touching the stream.
            ASSERT_FALSE(written.ok()) << label << " record " << i;
            EXPECT_EQ(written.error().kind, ErrorKind::kIoError) << label;
            EXPECT_TRUE(writer.failed()) << label;
          }
        }
      }
      failpoint::clear();

      const auto damaged = kernels::read_campaign_journal(path);
      EXPECT_EQ(damaged.torn_tail, torn) << label;
      ASSERT_EQ(damaged.entries.size(), boundary - 1) << label;

      // Resume: truncate the torn tail, append the missing records, and the
      // journal round-trips every record type bit for bit.
      {
        kernels::CampaignJournalWriter writer(path, damaged.valid_bytes);
        for (std::size_t i = boundary - 1; i < entries.size(); ++i) {
          EXPECT_TRUE(writer.record(entries[i]).ok()) << label;
        }
      }
      const auto repaired = kernels::read_campaign_journal(path);
      EXPECT_FALSE(repaired.torn_tail) << label;
      ASSERT_EQ(repaired.entries.size(), entries.size()) << label;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(repaired.entries[i].target, entries[i].target) << label;
        EXPECT_EQ(repaired.entries[i].trial, entries[i].trial) << label;
        EXPECT_EQ(repaired.entries[i].outcome, entries[i].outcome) << label;
        EXPECT_EQ(repaired.entries[i].injected, entries[i].injected) << label;
      }
      std::remove(path.c_str());
    }
  }
}

void expect_stats_equal(const std::vector<StructureInjectionStats>& a,
                        const std::vector<StructureInjectionStats>& b,
                        const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].structure, b[i].structure) << label;
    EXPECT_EQ(a[i].trials, b[i].trials) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].injected, b[i].injected) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].masked, b[i].masked) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].sdc, b[i].sdc) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].due_exception, b[i].due_exception)
        << label << " " << a[i].structure;
    EXPECT_EQ(a[i].due_hang, b[i].due_hang) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].due_invalid, b[i].due_invalid)
        << label << " " << a[i].structure;
    EXPECT_EQ(a[i].corrupted, b[i].corrupted)
        << label << " " << a[i].structure;
    EXPECT_EQ(a[i].early_stopped, b[i].early_stopped)
        << label << " " << a[i].structure;
  }
}

std::unique_ptr<kernels::KernelCase> make_vm() {
  return std::make_unique<kernels::KernelCaseAdapter<kernels::VectorMultiply>>(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 120});
}

TEST_F(ChaosJournal, CampaignSurvivesEnospcAtEveryBoundary) {
  // A VM campaign journals 3 structures x 8 trials = 24 records. For every
  // boundary n: ENOSPC on the nth journal write mid-campaign. The campaign
  // must finish with unchanged statistics (one warning, journal-less from
  // there), the journal must hold exactly n-1 records, and resuming from it
  // must reproduce the reference bit for bit. At 1 and 4 threads.
  CampaignConfig config;
  config.trials_per_structure = 8;

  auto reference_kernel = make_vm();
  config.threads = 1;
  const auto reference =
      kernels::run_injection_campaign(*reference_kernel, config);
  const std::uint64_t total_records = 3u * config.trials_per_structure;

  for (const unsigned threads : {1u, 4u}) {
    for (std::uint64_t boundary = 1; boundary <= total_records; ++boundary) {
      const std::string label = "threads=" + std::to_string(threads) +
                                " boundary=" + std::to_string(boundary);
      const std::string path = temp_path(
          "enospc_t" + std::to_string(threads) + "_b" +
          std::to_string(boundary));
      failpoint::clear();
      configure_or_die("campaign.journal.write=error(28)@" +
                       std::to_string(boundary));

      config.threads = threads;
      config.journal_path = path;
      config.resume = false;
      auto kernel = make_vm();
      const auto degraded = kernels::run_injection_campaign(*kernel, config);
      expect_stats_equal(degraded, reference, label + " degraded");
      failpoint::clear();

      const auto journal = kernels::read_campaign_journal(path);
      EXPECT_FALSE(journal.torn_tail) << label;
      ASSERT_EQ(journal.entries.size(), boundary - 1) << label;

      config.resume = true;
      auto resumed_kernel = make_vm();
      const auto resumed =
          kernels::run_injection_campaign(*resumed_kernel, config);
      expect_stats_equal(resumed, reference, label + " resumed");

      const auto complete = kernels::read_campaign_journal(path);
      EXPECT_FALSE(complete.torn_tail) << label;
      EXPECT_EQ(complete.entries.size(), total_records) << label;
      std::remove(path.c_str());
    }
  }
}

TEST_F(ChaosJournal, OpenFailureDegradesToJournalLess) {
  CampaignConfig config;
  config.trials_per_structure = 8;
  auto reference_kernel = make_vm();
  const auto reference =
      kernels::run_injection_campaign(*reference_kernel, config);

  const std::string path = temp_path("openfail");
  configure_or_die("campaign.journal.open=error(13)");  // EACCES
  config.journal_path = path;
  auto kernel = make_vm();
  const auto stats = kernels::run_injection_campaign(*kernel, config);
  expect_stats_equal(stats, reference, "open failure");
  failpoint::clear();
  // The journal was never created; nothing to clean up, nothing torn.
  EXPECT_THROW((void)kernels::read_campaign_journal(path), Error);
}

TEST_F(ChaosJournal, TruncateFailureOnResumeStillReplays) {
  CampaignConfig config;
  config.trials_per_structure = 8;
  const std::string path = temp_path("truncfail");
  config.journal_path = path;
  auto full_kernel = make_vm();
  const auto reference =
      kernels::run_injection_campaign(*full_kernel, config);

  // Leave a torn tail, then make the resume-time truncation fail: the
  // campaign warns, carries on journal-less, and replays what it has —
  // statistics stay bit-identical.
  {
    std::ofstream out(path, std::ios::app);
    out << "trial 1 5";
  }
  configure_or_die("campaign.journal.truncate=error(28)");
  config.resume = true;
  auto resumed_kernel = make_vm();
  const auto resumed =
      kernels::run_injection_campaign(*resumed_kernel, config);
  expect_stats_equal(resumed, reference, "truncate failure");
  std::remove(path.c_str());
}

// --- Serve request storms under allocation pressure ------------------------

using ChaosServe = ChaosTest;

constexpr const char* kServeModel =
    "param n = 64;\n"
    "model \"m\" {\n"
    "  time 0.5;\n"
    "  data A { elements n; element_size 8; }\n"
    "  pattern A stream { stride 1; repeat 4; }\n"
    "}\n";

TEST_F(ChaosServe, EvalAllocStormShedsExactlyTheScheduledRequests) {
  serve::Engine engine;
  const std::string frame =
      "{\"id\":1,\"op\":\"eval\",\"source\":" +
      serve::json_escape_string(kServeModel) + "}";
  // Every 3rd evaluation runs out of memory. Each request still gets
  // exactly one well-formed response: ok on the spared hits, a typed
  // resource_limit shed on the scheduled ones — never a crash, never the
  // internal catch-all.
  configure_or_die("eval.alloc=badalloc/3");
  constexpr int kStorm = 30;
  int ok_count = 0;
  int shed_count = 0;
  for (int i = 1; i <= kStorm; ++i) {
    const std::string response = engine.handle_line(frame);
    ASSERT_FALSE(response.empty()) << "request " << i;
    const serve::JsonParsed parsed = serve::parse_json(response);
    ASSERT_TRUE(parsed.ok && parsed.value.is_object()) << response;
    const serve::JsonValue* ok = parsed.value.find("ok");
    ASSERT_TRUE(ok != nullptr && ok->is_bool()) << response;
    if (i % 3 == 0) {
      EXPECT_FALSE(ok->boolean) << "request " << i;
      const serve::JsonValue* error = parsed.value.find("error");
      ASSERT_NE(error, nullptr) << response;
      const serve::JsonValue* kind = error->find("kind");
      ASSERT_TRUE(kind != nullptr && kind->is_string()) << response;
      EXPECT_EQ(kind->string, "resource_limit") << response;
      ++shed_count;
    } else {
      EXPECT_TRUE(ok->boolean) << "request " << i << ": " << response;
      ++ok_count;
    }
  }
  // Counters conserved: every request is exactly one of ok / error.
  EXPECT_EQ(engine.requests_handled(), static_cast<std::uint64_t>(kStorm));
  EXPECT_EQ(engine.responses_ok(), static_cast<std::uint64_t>(ok_count));
  EXPECT_EQ(engine.responses_error(), static_cast<std::uint64_t>(shed_count));
  EXPECT_EQ(engine.responses_ok() + engine.responses_error(),
            engine.requests_handled());

  // With the schedule cleared the same engine instance recovers fully.
  failpoint::clear();
  const serve::JsonParsed recovered =
      serve::parse_json(engine.handle_line(frame));
  ASSERT_TRUE(recovered.ok);
  EXPECT_TRUE(recovered.value.find("ok")->boolean);
}

// --- Robust I/O ------------------------------------------------------------

using ChaosRobustIo = ChaosTest;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(ChaosRobustIo, AtomicWritePreservesOldContentsOnFailure) {
  const std::string path = temp_path("atomic");
  ASSERT_TRUE(io::write_file_atomic(path, "original contents\n").ok());

  configure_or_die("io.write_file=error(28)");
  const Result<void> failed = io::write_file_atomic(path, "replacement\n");
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.error().kind, ErrorKind::kIoError);
  failpoint::clear();

  // The destination is the complete old file — never a prefix of the new
  // one — and no temp file is left behind.
  EXPECT_EQ(slurp(path), "original contents\n");
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  ASSERT_TRUE(io::write_file_atomic(path, "replacement\n").ok());
  EXPECT_EQ(slurp(path), "replacement\n");
  std::remove(path.c_str());
}

TEST_F(ChaosRobustIo, CheckedFlushClassifiesFailedStreams) {
  std::ostringstream healthy;
  healthy << "fine";
  EXPECT_TRUE(io::checked_flush(healthy, "healthy stream").ok());

  std::ofstream dead("/nonexistent-dir-for-dvf-chaos/file");
  dead << "lost";
  const Result<void> result = io::checked_flush(dead, "dead stream");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().kind, ErrorKind::kIoError);
}

// --- Trace export under injected faults ------------------------------------

using ChaosTrace = ChaosTest;

TEST_F(ChaosTrace, FailedTraceWriteLeavesNoTornArtifact) {
  DataStructureRegistry registry;
  std::vector<std::int64_t> buffer(16);
  const DsId id = registry.register_structure(
      "A", buffer.data(), buffer.size() * sizeof(buffer[0]),
      sizeof(buffer[0]));
  std::vector<MemoryRecord> records;
  for (std::uint64_t i = 0; i < 8; ++i) {
    records.push_back({i * 8, 8, id, false});
  }

  const std::string path = temp_path("trace") + ".dvft";
  write_trace_file(path, registry, records);
  ASSERT_EQ(read_trace_file(path).records.size(), 8u);

  std::vector<MemoryRecord> more = records;
  more.push_back({64, 8, id, true});
  // Serialization failure (torn stream) and artifact-write failure
  // (ENOSPC on the temp file): both surface as dvf::Error and neither may
  // damage the existing artifact under the final name.
  for (const std::string spec :
       {"trace.write=throw", "io.write_file=error(28)"}) {
    failpoint::clear();
    configure_or_die(spec);
    EXPECT_THROW(write_trace_file(path, registry, more), Error) << spec;
    failpoint::clear();
    EXPECT_EQ(read_trace_file(path).records.size(), 8u) << spec;
  }

  configure_or_die("trace.read=throw");
  EXPECT_THROW((void)read_trace_file(path), Error);
  failpoint::clear();
  EXPECT_EQ(read_trace_file(path).records.size(), 8u);
  std::remove(path.c_str());
}

// --- Thread pool spawn failures --------------------------------------------

using ChaosPool = ChaosTest;

TEST_F(ChaosPool, SpawnFailureDegradesPoolButWorkCompletes) {
  // Every spawn fails: the pool degrades to the caller's slot alone.
  configure_or_die("pool.spawn=error(11)");  // EAGAIN
  parallel::ThreadPool solo(4);
  EXPECT_EQ(solo.concurrency(), 1u);
  failpoint::clear();

  // Only the second spawn fails: slot 0 (caller) plus one worker survive.
  configure_or_die("pool.spawn=error(11)@2");
  parallel::ThreadPool partial(4);
  EXPECT_EQ(partial.concurrency(), 2u);
  failpoint::clear();

  // Degraded pools still complete work, and the deterministic reduction
  // contract holds regardless of how many slots survived.
  for (parallel::ThreadPool* pool : {&solo, &partial}) {
    const std::uint64_t total = parallel::parallel_reduce(
        *pool, 1000, std::uint64_t{0},
        [](std::uint64_t index) { return index; },
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(total, 999u * 1000u / 2u);
  }
}

}  // namespace
}  // namespace dvf
