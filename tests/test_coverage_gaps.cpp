// Coverage for paths the mainline suites exercise only implicitly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "dvf/common/rng.hpp"
#include "dvf/dvf/cache_vulnerability.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/patterns/random.hpp"
#include "dvf/report/table.hpp"

namespace dvf {
namespace {

TEST(CsvExport, DisabledWithoutEnvironment) {
  ::unsetenv("DVF_CSV_DIR");
  Table t({"a"});
  t.add_row({"1"});
  EXPECT_FALSE(maybe_export_csv("never_written", t));
}

TEST(CsvExport, WritesWhenEnvironmentSet) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "dvf_csv_test").string();
  std::filesystem::create_directories(dir);
  ::setenv("DVF_CSV_DIR", dir.c_str(), 1);
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_TRUE(maybe_export_csv("gap_test", t));
  ::unsetenv("DVF_CSV_DIR");

  std::ifstream in(dir + "/gap_test.csv");
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "x,y");
}

TEST(LruIrm, UnsortedInputMatchesSortedInput) {
  Xoshiro256 rng(31);
  std::vector<double> shuffled;
  for (int i = 0; i < 500; ++i) {
    shuffled.push_back(rng.uniform() * 0.5);
  }
  std::vector<double> sorted = shuffled;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  EXPECT_DOUBLE_EQ(expected_misses_lru_irm(shuffled, 100),
                   expected_misses_lru_irm(sorted, 100));
}

TEST(LruIrm, AscendingInputHandledWithoutResort) {
  std::vector<double> ascending;
  for (int i = 1; i <= 200; ++i) {
    ascending.push_back(static_cast<double>(i) / 400.0);
  }
  std::vector<double> descending(ascending.rbegin(), ascending.rend());
  EXPECT_DOUBLE_EQ(expected_misses_lru_irm(ascending, 50),
                   expected_misses_lru_irm(descending, 50));
}

TEST(CacheReferences, ReuseCountsLineGranularTraversals) {
  ReuseSpec u;
  u.self_bytes = 6400;  // 100 64-byte line touches per traversal
  u.reuse_rounds = 4;
  EXPECT_DOUBLE_EQ(cache_references(PatternSpec{u}), 100.0 * 5);
}

TEST(ExtendedSuite, AddsSparseCgAndGemmToTheSixKernels) {
  const auto suite = kernels::make_extended_suite();
  ASSERT_EQ(suite.size(), 8u);
  EXPECT_EQ(suite[6]->name(), "CGS");
  EXPECT_EQ(suite[6]->method_class(), "Sparse linear algebra (CSR)");
  EXPECT_EQ(suite.back()->name(), "GEMM");
  EXPECT_EQ(suite.back()->method_class(), "Dense linear algebra (blocked)");
  // The extension kernels are full citizens: model + registry line up.
  for (auto* k : {suite[6].get(), suite.back().get()}) {
    const ModelSpec spec = k->model_spec();
    for (const auto& ds : spec.structures) {
      EXPECT_TRUE(k->registry().find(ds.name).has_value()) << ds.name;
    }
  }
}

TEST(KernelCase, NamesAndMethodsAreStable) {
  const auto suite = kernels::make_verification_suite();
  EXPECT_EQ(suite[0]->name(), "VM");
  EXPECT_EQ(suite[1]->method_class(), "Sparse linear algebra");
  EXPECT_EQ(suite[5]->name(), "MC");
}

TEST(TableAccessors, HeaderAndRowRoundTrip) {
  Table t({"h1", "h2"});
  t.add_row({"a", "b"});
  EXPECT_EQ(t.header(), (std::vector<std::string>{"h1", "h2"}));
  EXPECT_EQ(t.row(0), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace dvf
