// Unit tests for DSL semantic analysis and lowering to ModelSpec/Machine.
#include "dvf/dsl/analyzer.hpp"

#include <gtest/gtest.h>

#include <variant>

#include "dvf/common/error.hpp"
#include "dvf/dsl/parser.hpp"

namespace dvf::dsl {
namespace {

TEST(Evaluate, ArithmeticAndParams) {
  const std::map<std::string, double> env = {{"n", 10.0}};
  const Program p = parse("param x = (n + 2) * 3 - n / 5 + 2 ^ 3 + 7 % 4;");
  EXPECT_DOUBLE_EQ(evaluate(*p.params[0].value, env),
                   36.0 - 2.0 + 8.0 + 3.0);
}

TEST(Evaluate, UnknownIdentifierThrows) {
  const Program p = parse("param x = y + 1;");
  EXPECT_THROW((void)evaluate(*p.params[0].value, {}), SemanticError);
}

TEST(Evaluate, DivisionByZeroThrows) {
  const Program p = parse("param x = 1 / 0;");
  EXPECT_THROW((void)evaluate(*p.params[0].value, {}), SemanticError);
  const Program q = parse("param x = 1 % 0;");
  EXPECT_THROW((void)evaluate(*q.params[0].value, {}), SemanticError);
}

TEST(Analyzer, ParamsChainInOrder) {
  const CompiledProgram c = compile("param a = 2; param b = a * a;");
  EXPECT_DOUBLE_EQ(c.params.at("b"), 4.0);
}

TEST(Analyzer, MachineLowering) {
  const CompiledProgram c = compile(R"(
    machine "m" {
      cache { associativity 4; sets 64; line 32; }
      memory { fit 1234; }
    })");
  const Machine& m = c.machine("m");
  EXPECT_EQ(m.llc.associativity(), 4u);
  EXPECT_EQ(m.llc.num_sets(), 64u);
  EXPECT_EQ(m.llc.line_bytes(), 32u);
  EXPECT_DOUBLE_EQ(m.memory.fit(), 1234.0);
  EXPECT_THROW((void)c.machine("nope"), SemanticError);
}

TEST(Analyzer, EccMachineUsesTableVII) {
  const CompiledProgram c = compile(R"(
    machine "m" {
      cache { associativity 2; sets 4; line 64; }
      memory { ecc "chipkill"; }
    })");
  EXPECT_DOUBLE_EQ(c.machine("m").memory.fit(), 0.02);
}

TEST(Analyzer, StreamLowering) {
  const CompiledProgram c = compile(R"(
    param n = 100;
    model "m" {
      time 0.5;
      data A { elements n; element_size 4; }
      pattern A stream { stride 2; repeat 3; }
    })");
  const ModelSpec& m = c.model("m");
  EXPECT_DOUBLE_EQ(*m.exec_time_seconds, 0.5);
  ASSERT_EQ(m.structures.size(), 1u);
  EXPECT_EQ(m.structures[0].size_bytes, 400u);
  ASSERT_EQ(m.structures[0].patterns.size(), 3u);
  const auto& s = std::get<StreamingSpec>(m.structures[0].patterns[0]);
  EXPECT_EQ(s.stride_elements, 2u);
  EXPECT_EQ(s.element_count, 100u);
  EXPECT_EQ(s.element_bytes, 4u);
}

TEST(Analyzer, SizeInsteadOfElements) {
  const CompiledProgram c = compile(R"(
    model "m" {
      data A { size 4KB; element_size 8; }
      pattern A stream { }
    })");
  EXPECT_EQ(c.model("m").structures[0].size_bytes, 4096u);
}

TEST(Analyzer, RandomLowering) {
  const CompiledProgram c = compile(R"(
    model "m" {
      data T { elements 1000; element_size 32; }
      pattern T random { visits 200; iterations 1000; ratio 0.5; }
    })");
  const auto& r = std::get<RandomSpec>(c.model("m").structures[0].patterns[0]);
  EXPECT_DOUBLE_EQ(r.visits_per_iteration, 200.0);
  EXPECT_EQ(r.iterations, 1000u);
  EXPECT_DOUBLE_EQ(r.cache_ratio, 0.5);
}

TEST(Analyzer, TemplateLoweringWithCount) {
  const CompiledProgram c = compile(R"(
    model "m" {
      data R { elements 1000; element_size 16; }
      pattern R template { start (5, 7); step 2; count 3; repeat 4; }
    })");
  const auto& t = std::get<TemplateSpec>(c.model("m").structures[0].patterns[0]);
  EXPECT_EQ(t.element_indices,
            (std::vector<std::uint64_t>{5, 7, 7, 9, 9, 11}));
  EXPECT_EQ(t.repetitions, 4u);
}

TEST(Analyzer, TemplateLoweringWithEndTuple) {
  const CompiledProgram c = compile(R"(
    model "m" {
      data R { elements 1000; element_size 16; }
      pattern R template { start (10); step 5; end (25); }
    })");
  const auto& t = std::get<TemplateSpec>(c.model("m").structures[0].patterns[0]);
  EXPECT_EQ(t.element_indices, (std::vector<std::uint64_t>{10, 15, 20, 25}));
}

TEST(Analyzer, ReuseExplicitAndOrderDerived) {
  const CompiledProgram c = compile(R"dsl(
    model "m" {
      order "r(Ap)p(xp)(Ap)r(rp)";
      data A { elements 100; element_size 8; }
      data p { elements 10; element_size 8; }
      data r { elements 10; element_size 8; }
      data x { elements 10; element_size 8; }
      pattern p reuse { }
      pattern x reuse { rounds 7; other_bytes 4096; }
    })dsl");
  const ModelSpec& m = c.model("m");
  const auto& p = std::get<ReuseSpec>(m.find("p")->patterns[0]);
  // p appears in (Ap), p, (xp), (Ap), (rp): 5 appearances -> 4 rounds;
  // interferers sharing a phase: A, x, r.
  EXPECT_EQ(p.reuse_rounds, 4u);
  EXPECT_EQ(p.other_bytes, 800u + 80u + 80u);
  const auto& x = std::get<ReuseSpec>(m.find("x")->patterns[0]);
  EXPECT_EQ(x.reuse_rounds, 7u);
  EXPECT_EQ(x.other_bytes, 4096u);
}

TEST(Analyzer, ReuseScenarioAndOccupancyOptions) {
  const CompiledProgram c = compile(R"(
    model "m" {
      data A { elements 100; element_size 8; }
      pattern A reuse { rounds 2; other_bytes 64; scenario 2; occupancy 1; }
    })");
  const auto& u = std::get<ReuseSpec>(c.model("m").structures[0].patterns[0]);
  EXPECT_EQ(u.scenario, ReuseScenario::kBlend);
  EXPECT_EQ(u.occupancy, ReuseOccupancy::kContiguous);
  EXPECT_THROW(compile(R"(
    model "m" {
      data A { elements 100; element_size 8; }
      pattern A reuse { rounds 2; other_bytes 64; occupancy 3; }
    })"),
               SemanticError);
}

TEST(Analyzer, RejectsSemanticMistakes) {
  EXPECT_THROW(compile("param a = 1; param a = 2;"), SemanticError);
  EXPECT_THROW(compile(R"(model "m" { data A { elements 1; }
                           data A { elements 1; } })"),
               SemanticError);
  EXPECT_THROW(compile(R"(model "m" { pattern A stream { } })"),
               SemanticError);
  EXPECT_THROW(compile(R"(model "m" { data A { elements 4; }
                           pattern A wiggle { } })"),
               SemanticError);
  EXPECT_THROW(compile(R"(model "m" { data A { elements 4; }
                           pattern A stream { bogus 3; } })"),
               SemanticError);
  EXPECT_THROW(compile(R"(model "m" { data A { element_size 8; } })"),
               SemanticError);
  // reuse without rounds and without an order mentioning the structure.
  EXPECT_THROW(compile(R"(model "m" { data A { elements 4; }
                           pattern A reuse { } })"),
               SemanticError);
  // non-integer count
  EXPECT_THROW(compile(R"(model "m" { data A { elements 2.5; } })"),
               SemanticError);
}

TEST(Analyzer, RejectsFitAndEccTogether) {
  EXPECT_THROW(compile(R"(
    machine "m" {
      cache { associativity 2; sets 2; line 32; }
      memory { fit 100; ecc "secded"; }
    })"),
               SemanticError);
}

}  // namespace
}  // namespace dvf::dsl
