// Unit tests for the DSL lexer.
#include "dvf/dsl/lexer.hpp"

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"

namespace dvf::dsl {
namespace {

TEST(Lexer, TokenizesIdentifiersAndPunctuation) {
  const auto tokens = tokenize("model \"x\" { data A ; }");
  ASSERT_EQ(tokens.size(), 8u);  // incl. EOF
  EXPECT_TRUE(tokens[0].is_word("model"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kString);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].kind, TokenKind::kLBrace);
  EXPECT_TRUE(tokens[3].is_word("data"));
  EXPECT_TRUE(tokens[4].is_word("A"));
  EXPECT_EQ(tokens[5].kind, TokenKind::kSemicolon);
  EXPECT_EQ(tokens[6].kind, TokenKind::kRBrace);
  EXPECT_EQ(tokens[7].kind, TokenKind::kEndOfFile);
}

TEST(Lexer, NumbersWithExponentsAndSuffixes) {
  const auto tokens = tokenize("42 3.5 1e3 2.5e-2 4KB 2MB 1GB");
  EXPECT_DOUBLE_EQ(tokens[0].number, 42.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 3.5);
  EXPECT_DOUBLE_EQ(tokens[2].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].number, 0.025);
  EXPECT_DOUBLE_EQ(tokens[4].number, 4096.0);
  EXPECT_DOUBLE_EQ(tokens[5].number, 2.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(tokens[6].number, 1024.0 * 1024 * 1024);
}

TEST(Lexer, OperatorsAndExpressions) {
  const auto tokens = tokenize("a + b*2 - (c/d) % e ^ 2");
  std::vector<TokenKind> kinds;
  for (const auto& t : tokens) {
    kinds.push_back(t.kind);
  }
  EXPECT_EQ(kinds[1], TokenKind::kPlus);
  EXPECT_EQ(kinds[3], TokenKind::kStar);
  EXPECT_EQ(kinds[5], TokenKind::kMinus);
  EXPECT_EQ(kinds[6], TokenKind::kLParen);
  EXPECT_EQ(kinds[8], TokenKind::kSlash);
  EXPECT_EQ(kinds[11], TokenKind::kPercent);
  EXPECT_EQ(kinds[13], TokenKind::kCaret);
}

TEST(Lexer, CommentsAreSkipped) {
  const auto tokens = tokenize(
      "a // line comment\n b /* block\n comment */ c");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[0].is_word("a"));
  EXPECT_TRUE(tokens[1].is_word("b"));
  EXPECT_TRUE(tokens[2].is_word("c"));
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = tokenize("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, StringEscapes) {
  const auto tokens = tokenize(R"("say \"hi\"")");
  EXPECT_EQ(tokens[0].text, "say \"hi\"");
}

TEST(Lexer, RejectsMalformedInput) {
  EXPECT_THROW(tokenize("\"unterminated"), ParseError);
  EXPECT_THROW(tokenize("/* never closed"), ParseError);
  EXPECT_THROW(tokenize("@"), ParseError);
}

TEST(Lexer, EmptyInputYieldsOnlyEof) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEndOfFile);
}

// ---- source-span pinning -------------------------------------------------
// The diagnostics engine renders carets from token line/column/length, so
// the exact values are contract, not implementation detail.

TEST(LexerSpans, TabsCountAsOneColumn) {
  // "\ta\t\tbb" — a tab advances the column by exactly one, whatever the
  // terminal renders; render_human re-emits source tabs to stay aligned.
  const auto tokens = tokenize("\ta\t\tbb");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 2);
  EXPECT_EQ(tokens[1].column, 5);
  EXPECT_EQ(tokens[1].length, 2);
}

TEST(LexerSpans, CrLfCountsAsOneLineBreak) {
  const auto tokens = tokenize("a\r\nb\nc\r\n\r\nd");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 1);
  EXPECT_EQ(tokens[2].line, 3);
  EXPECT_EQ(tokens[3].line, 5);  // the blank CRLF line still counts
  EXPECT_EQ(tokens[3].column, 1);
}

TEST(LexerSpans, MultiLineBlockCommentAdvancesLines) {
  const auto tokens = tokenize("a /* one\n two\n three */ b");
  EXPECT_EQ(tokens[1].line, 3);
  EXPECT_EQ(tokens[1].column, 11);  // " three */ b"
}

TEST(LexerSpans, StringSpanCoversQuotesAndEscapes) {
  // Span measures source characters, not the unescaped value.
  const auto tokens = tokenize(R"(  "a\"b")");
  EXPECT_EQ(tokens[0].column, 3);
  EXPECT_EQ(tokens[0].length, 6);  // "a\"b" incl. both quotes
  EXPECT_EQ(tokens[0].text, "a\"b");
}

TEST(LexerSpans, NumberAndSuffixLengths) {
  const auto tokens = tokenize("42 2.5e-2 4KB");
  EXPECT_EQ(tokens[0].length, 2);
  EXPECT_EQ(tokens[1].column, 4);
  EXPECT_EQ(tokens[1].length, 6);
  EXPECT_EQ(tokens[2].column, 11);
  EXPECT_EQ(tokens[2].length, 3);  // suffix belongs to the token
}

TEST(LexerSpans, PunctuationHasLengthOne) {
  const auto tokens = tokenize("{;}");
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].length, 1);
    EXPECT_EQ(tokens[i].column, static_cast<int>(i) + 1);
  }
}

TEST(LexerSpans, EofSitsJustPastTheLastToken) {
  const auto tokens = tokenize("ab\ncd");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[2].kind, TokenKind::kEndOfFile);
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[2].column, 3);
  EXPECT_EQ(tokens[2].length, 0);  // EOF covers no source characters

  const auto trailing = tokenize("ab\n");
  EXPECT_EQ(trailing[1].line, 2);
  EXPECT_EQ(trailing[1].column, 1);
}

}  // namespace
}  // namespace dvf::dsl
