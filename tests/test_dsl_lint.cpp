// Golden-file tests for the diagnostics engine and the `dvfc lint` rule
// pass. Every file under tests/lint_cases/ carries `// expect:` comments
// pinning the exact code, severity and span of each diagnostic it must
// produce — no more, no less. The repository's models/*.aspen must stay
// lint-clean (notes are allowed; the paper's own MG model trips DVF-N202).
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dvf/dsl/analyzer.hpp"
#include "dvf/dsl/diagnostics.hpp"
#include "dvf/dsl/lint.hpp"

namespace dvf::dsl {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

/// "code severity line:column:length" — the golden shape of one diagnostic.
std::string fingerprint(const std::string& code, const std::string& severity,
                        int line, int column, int length) {
  std::ostringstream out;
  out << code << ' ' << severity << ' ' << line << ':' << column << ':'
      << length;
  return out.str();
}

std::vector<std::string> expected_fingerprints(const std::string& source) {
  std::vector<std::string> expects;
  std::istringstream lines(source);
  std::string line;
  const std::string marker = "// expect: ";
  while (std::getline(lines, line)) {
    const std::size_t at = line.find(marker);
    if (at == std::string::npos) {
      continue;
    }
    std::istringstream fields(line.substr(at + marker.size()));
    std::string code, severity, span;
    fields >> code >> severity >> span;
    int l = 0, c = 0, len = 0;
    char colon = 0;
    std::istringstream span_in(span);
    span_in >> l >> colon >> c >> colon >> len;
    expects.push_back(fingerprint(code, severity, l, c, len));
  }
  std::sort(expects.begin(), expects.end());
  return expects;
}

std::vector<std::string> actual_fingerprints(const LintResult& result) {
  std::vector<std::string> actual;
  for (const Diagnostic& d : result.diagnostics) {
    actual.push_back(fingerprint(d.code, to_string(d.severity), d.span.line,
                                 d.span.column, d.span.length));
  }
  std::sort(actual.begin(), actual.end());
  return actual;
}

TEST(LintGolden, EveryCaseMatchesItsExpectComments) {
  const fs::path dir = DVF_LINT_CASES_DIR;
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  std::size_t cases = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".aspen") {
      continue;
    }
    ++cases;
    const std::string source = read_file(entry.path());
    const std::vector<std::string> expected = expected_fingerprints(source);
    EXPECT_FALSE(expected.empty())
        << entry.path() << " has no // expect: comments";
    const LintResult result = lint(source);
    EXPECT_EQ(actual_fingerprints(result), expected)
        << entry.path().filename();
  }
  // One known-bad file per diagnostic code, plus the multi-defect case.
  EXPECT_GE(cases, 30u);
}

TEST(LintGolden, BundledModelsAreLintClean) {
  const fs::path dir = DVF_MODELS_DIR;
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  std::size_t models = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".aspen") {
      continue;
    }
    ++models;
    const LintResult result = lint_file(entry.path().string());
    EXPECT_EQ(result.errors, 0u) << entry.path();
    EXPECT_EQ(result.warnings, 0u) << entry.path();
  }
  EXPECT_GE(models, 4u);  // vm, cg, mg, nbody
}

// The acceptance criterion from the diagnostics-engine design: one
// invocation over a file with several seeded defects reports all of them,
// with stable codes and correct spans, in both renderings.
TEST(LintGolden, MultiDefectFileReportsEverythingInOnePass) {
  const fs::path path = fs::path(DVF_LINT_CASES_DIR) / "multi_defects.aspen";
  const LintResult result = lint_file(path.string());
  EXPECT_GE(result.diagnostics.size(), 3u);
  EXPECT_GE(result.errors, 2u);
  EXPECT_GE(result.warnings, 2u);
  EXPECT_FALSE(result.clean());

  const std::string human =
      render_human(result.diagnostics, result.source, "multi_defects.aspen");
  const std::string json = render_json(result.diagnostics, "multi_defects.aspen");
  for (const char* code : {"DVF-E012", "DVF-E014", "DVF-W101", "DVF-W102"}) {
    EXPECT_NE(human.find(code), std::string::npos) << code;
    EXPECT_NE(json.find(code), std::string::npos) << code;
  }
  // Spans survive into both renderings (visits 500 sits at 9:5).
  EXPECT_NE(human.find("multi_defects.aspen:9:5: error[DVF-E012]"),
            std::string::npos)
      << human;
  EXPECT_NE(json.find("\"line\":9,\"column\":5,\"length\":6,"
                      "\"severity\":\"error\",\"code\":\"DVF-E012\""),
            std::string::npos)
      << json;
}

TEST(LintGolden, LintOnlyErrorsDoNotBlockCompile) {
  // E012/E013-bounds/E014-ratio live in the lint rule pass; the throwing
  // compile() keeps exactly its historical accept set.
  const fs::path path =
      fs::path(DVF_LINT_CASES_DIR) / "e012_random_infeasible.aspen";
  EXPECT_NO_THROW((void)compile_file(path.string()));
  const LintResult result = lint_file(path.string());
  EXPECT_EQ(result.errors, 1u);
}

TEST(LintRuleCatalog, NamesAndCodesAreWellFormed) {
  const auto catalog = lint_rule_catalog();
  ASSERT_FALSE(catalog.empty());
  std::vector<std::string> names;
  for (const LintRuleInfo& rule : catalog) {
    names.emplace_back(rule.name);
    EXPECT_NE(std::string_view(rule.codes).find("DVF-"), std::string::npos)
        << rule.name;
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
      << "duplicate rule name";
}

TEST(DiagnosticEngine, CountsAndSortsBySourcePosition) {
  DiagnosticEngine diags;
  diags.warning(codes::kUnusedParam, {5, 2, 3}, "later");
  diags.note(codes::kReuseNoInterference, {1, 9, 1}, "note after error");
  diags.error(codes::kSyntax, {1, 9, 1}, "error first on ties");
  diags.error(codes::kDivisionByZero, {1, 2, 1}, "earliest column");
  EXPECT_EQ(diags.error_count(), 2u);
  EXPECT_EQ(diags.warning_count(), 1u);
  EXPECT_TRUE(diags.has_errors());
  ASSERT_NE(diags.first_error(), nullptr);
  EXPECT_EQ(diags.first_error()->message, "error first on ties");

  const std::vector<Diagnostic> sorted = diags.sorted();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].message, "earliest column");
  EXPECT_EQ(sorted[1].message, "error first on ties");
  EXPECT_EQ(sorted[2].message, "note after error");
  EXPECT_EQ(sorted[3].message, "later");
}

TEST(DiagnosticRendering, CaretPreservesTabsForAlignment) {
  DiagnosticEngine diags;
  // "\tparam n = x;" — x at column 12 (the tab counts as one column).
  diags.error(codes::kUnknownIdentifier, {1, 12, 1}, "unknown parameter 'x'");
  const std::string out =
      render_human(diags.diagnostics(), "\tparam n = x;", "t.aspen");
  EXPECT_NE(out.find("t.aspen:1:12: error[DVF-E002]"), std::string::npos)
      << out;
  // The pad before the caret copies the source tab so the caret lands under
  // 'x' however wide the terminal renders tabs.
  EXPECT_NE(out.find("      | \t          ^"), std::string::npos) << out;
}

TEST(DiagnosticRendering, UnderlineClampsToLineEnd) {
  DiagnosticEngine diags;
  diags.error(codes::kSyntax, {1, 7, 50}, "span longer than the line");
  const std::string out = render_human(diags.diagnostics(), "param x", "f");
  // 50-character underline clamps to the single character left on the line.
  EXPECT_NE(out.find("      |       ^\n"), std::string::npos) << out;
}

TEST(DiagnosticRendering, JsonEscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("x\n\t\r"), "x\\n\\t\\r");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");

  DiagnosticEngine diags;
  diags.error(codes::kSyntax, {2, 3, 4}, "expected '\"'", "quote \"it\"");
  const std::string json = render_json(diags.diagnostics(), "a\"b.aspen");
  EXPECT_NE(json.find("\"file\":\"a\\\"b.aspen\""), std::string::npos);
  EXPECT_NE(json.find("\"message\":\"expected '\\\"'\""), std::string::npos);
  EXPECT_NE(json.find("\"hint\":\"quote \\\"it\\\"\""), std::string::npos);
}

TEST(DiagnosticRendering, EmptyDiagnosticsRenderAsEmptyArray) {
  EXPECT_EQ(render_json({}, "f.aspen"), "[]\n");
  EXPECT_EQ(render_human({}, "source", "f.aspen"), "");
}

TEST(DiagnosticRendering, WholeProgramFindingsOmitExcerpt) {
  DiagnosticEngine diags;
  diags.warning(codes::kNoMachine, {0, 0, 1}, "no machine anywhere");
  const std::string out = render_human(diags.diagnostics(), "x", "f.aspen");
  EXPECT_EQ(out, "f.aspen: warning[DVF-W103]: no machine anywhere\n");
}

}  // namespace
}  // namespace dvf::dsl
