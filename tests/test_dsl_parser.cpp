// Unit tests for the DSL parser (AST shape and error reporting).
#include "dvf/dsl/parser.hpp"

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"

namespace dvf::dsl {
namespace {

TEST(Parser, ParamDeclarations) {
  const Program p = parse("param n = 10; param m = n * 2;");
  ASSERT_EQ(p.params.size(), 2u);
  EXPECT_EQ(p.params[0].name, "n");
  EXPECT_EQ(p.params[1].name, "m");
  EXPECT_EQ(p.params[1].value->kind, Expr::Kind::kBinary);
}

TEST(Parser, MachineBlocks) {
  const Program p = parse(R"(
    machine "laptop" {
      cache { associativity 4; sets 64; line 32; }
      memory { fit 5000; }
    })");
  ASSERT_EQ(p.machines.size(), 1u);
  EXPECT_EQ(p.machines[0].name, "laptop");
  EXPECT_EQ(p.machines[0].cache.size(), 3u);
  EXPECT_EQ(p.machines[0].memory.size(), 1u);
  EXPECT_TRUE(p.machines[0].ecc.empty());
}

TEST(Parser, EccShorthandInMemoryBlock) {
  const Program p = parse(R"(
    machine "m" {
      cache { associativity 2; sets 2; line 32; }
      memory { ecc "secded"; }
    })");
  EXPECT_EQ(p.machines[0].ecc, "secded");
  EXPECT_TRUE(p.machines[0].memory.empty());
}

TEST(Parser, ModelWithDataPatternsTimeOrder) {
  const Program p = parse(R"(
    model "CG" {
      time 0.5;
      order "r(Ap)p";
      data A { elements 100; element_size 8; }
      pattern A stream { stride 2; }
      data r { elements 10; }
      pattern r reuse { rounds 5; other_bytes 800; }
    })");
  ASSERT_EQ(p.models.size(), 1u);
  const ModelDecl& m = p.models[0];
  EXPECT_NE(m.time, nullptr);
  EXPECT_EQ(m.order, "r(Ap)p");
  ASSERT_EQ(m.data.size(), 2u);
  ASSERT_EQ(m.patterns.size(), 2u);
  EXPECT_EQ(m.patterns[0].target, "A");
  EXPECT_EQ(m.patterns[0].kind, "stream");
  EXPECT_EQ(m.patterns[1].kind, "reuse");
}

TEST(Parser, TemplateTuples) {
  const Program p = parse(R"(
    model "MG" {
      data R { elements 1000; }
      pattern R template {
        start (1, 2, 3);
        step 1;
        count 10;
      }
    })");
  const PatternDecl& pat = p.models[0].patterns[0];
  ASSERT_EQ(pat.tuples.size(), 1u);
  EXPECT_EQ(pat.tuples[0].key, "start");
  EXPECT_EQ(pat.tuples[0].values.size(), 3u);
  EXPECT_EQ(pat.properties.size(), 2u);
}

TEST(Parser, OptionalEqualsBetweenKeyAndValue) {
  const Program p = parse("model \"m\" { data A { elements = 5; } }");
  EXPECT_EQ(p.models[0].data[0].properties[0].key, "elements");
}

TEST(Parser, ExpressionPrecedence) {
  const Program p = parse("param x = 2 + 3 * 4;");
  const Expr& e = *p.params[0].value;
  ASSERT_EQ(e.kind, Expr::Kind::kBinary);
  EXPECT_EQ(e.op, '+');
  EXPECT_EQ(e.rhs->op, '*');
}

TEST(Parser, PowerIsRightAssociative) {
  const Program p = parse("param x = 2 ^ 3 ^ 2;");
  const Expr& e = *p.params[0].value;
  EXPECT_EQ(e.op, '^');
  EXPECT_EQ(e.rhs->op, '^');
}

TEST(Parser, UnaryMinus) {
  const Program p = parse("param x = -3 + 1;");
  EXPECT_EQ(p.params[0].value->lhs->kind, Expr::Kind::kUnary);
}

TEST(Parser, ErrorsCarrySourcePositions) {
  try {
    (void)parse("model \"m\" {\n  bogus 1;\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& err) {
    EXPECT_EQ(err.line(), 2);
    EXPECT_NE(std::string(err.what()).find("bogus"), std::string::npos);
  }
}

TEST(Parser, RejectsStructuralMistakes) {
  EXPECT_THROW((void)parse("param 3 = 4;"), ParseError);
  EXPECT_THROW((void)parse("machine noquotes { }"), ParseError);
  EXPECT_THROW((void)parse("model \"m\" { data A { elements 1; }"), ParseError);
  EXPECT_THROW((void)parse("model \"m\" { pattern A }"), ParseError);
  EXPECT_THROW((void)parse("wibble;"), ParseError);
  EXPECT_THROW((void)parse("param x = (1 + ;"), ParseError);
}

}  // namespace
}  // namespace dvf::dsl
