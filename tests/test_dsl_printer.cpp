// Tests for the DSL pretty-printer: round-trip stability and expression
// formatting.
#include "dvf/dsl/printer.hpp"

#include <gtest/gtest.h>

#include <map>

#include "dvf/dsl/analyzer.hpp"
#include "dvf/dsl/parser.hpp"

namespace dvf::dsl {
namespace {

std::string fmt_expr(const std::string& text) {
  const Program p = parse("param x = " + text + ";");
  return print(*p.params[0].value);
}

TEST(Printer, ExpressionsUseMinimalParens) {
  EXPECT_EQ(fmt_expr("1 + 2 * 3"), "1 + 2 * 3");
  EXPECT_EQ(fmt_expr("(1 + 2) * 3"), "(1 + 2) * 3");
  EXPECT_EQ(fmt_expr("1 - (2 - 3)"), "1 - (2 - 3)");
  EXPECT_EQ(fmt_expr("2 ^ 3 ^ 4"), "2 ^ 3 ^ 4");
  EXPECT_EQ(fmt_expr("(2 ^ 3) ^ 4"), "(2 ^ 3) ^ 4");
  EXPECT_EQ(fmt_expr("-x + 1"), "-x + 1");
  EXPECT_EQ(fmt_expr("-(x + 1)"), "-(x + 1)");
}

TEST(Printer, ExpressionValuePreservedThroughRoundTrip) {
  const std::map<std::string, double> env = {{"n", 7.0}};
  for (const char* text :
       {"1 + 2 * n - 4 / 2", "n ^ 2 % 5", "-(n - 2) * (n + 2)",
        "((n))", "2 ^ -1 + n"}) {
    const Program original = parse(std::string("param x = ") + text + ";");
    const std::string printed = print(*original.params[0].value);
    const Program reparsed = parse("param x = " + printed + ";");
    EXPECT_DOUBLE_EQ(evaluate(*original.params[0].value, env),
                     evaluate(*reparsed.params[0].value, env))
        << text << " -> " << printed;
  }
}

TEST(Printer, ProgramRoundTripIsSemanticallyStable) {
  const std::string source = R"dsl(
    param n = 32;
    machine "m" {
      cache { associativity 4; sets 64; line 32; }
      memory { ecc "secded"; }
    }
    model "MG" {
      time 0.12;
      order "r(Ap)p";
      data R { elements n * n; element_size 16; }
      pattern R template { start (2 * n + 1, 3 * n + 1); step 1; count n; }
      data r { elements n; element_size 8; }
      pattern r reuse { rounds 3; other_bytes 8 * n * n; }
    }
  )dsl";

  const std::string printed = print(parse(source));
  // The printed form compiles to the same machines/models.
  const CompiledProgram original = compile(source);
  const CompiledProgram reparsed = compile(printed);
  ASSERT_EQ(reparsed.models.size(), original.models.size());
  ASSERT_EQ(reparsed.machines.size(), original.machines.size());
  EXPECT_DOUBLE_EQ(reparsed.machine("m").memory.fit(),
                   original.machine("m").memory.fit());
  const ModelSpec& a = original.model("MG");
  const ModelSpec& b = reparsed.model("MG");
  ASSERT_EQ(a.structures.size(), b.structures.size());
  for (std::size_t i = 0; i < a.structures.size(); ++i) {
    EXPECT_EQ(a.structures[i].name, b.structures[i].name);
    EXPECT_EQ(a.structures[i].size_bytes, b.structures[i].size_bytes);
    EXPECT_EQ(a.structures[i].patterns.size(), b.structures[i].patterns.size());
  }
}

TEST(Printer, PrintingIsIdempotent) {
  const std::string source =
      "param a = 1; machine \"x\" { cache { associativity 2; sets 2; "
      "line 32; } memory { fit 10; } } model \"m\" { data D { elements a; } "
      "pattern D stream { stride 1; } }";
  const std::string once = print(parse(source));
  const std::string twice = print(parse(once));
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace dvf::dsl
