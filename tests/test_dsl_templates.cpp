// Unit tests for template-progression expansion and access-order parsing.
#include "dvf/dsl/template_expander.hpp"

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"

namespace dvf::dsl {
namespace {

TEST(Progression, ExpandsStartTupleByStep) {
  const std::vector<std::int64_t> start = {2, 7};
  const auto out = expand_progression(start, 3, 3);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{2, 7, 5, 10, 8, 13}));
}

TEST(Progression, NegativeStepsAllowedWhileNonNegative) {
  const std::vector<std::int64_t> start = {10};
  const auto out = expand_progression(start, -5, 3);
  EXPECT_EQ(out, (std::vector<std::uint64_t>{10, 5, 0}));
}

TEST(Progression, RejectsUnderflowAndEmpties) {
  const std::vector<std::int64_t> start = {4};
  EXPECT_THROW((void)expand_progression(start, -5, 3), InvalidArgumentError);
  EXPECT_THROW((void)expand_progression({}, 1, 3), InvalidArgumentError);
  EXPECT_THROW((void)expand_progression(start, 1, 0), InvalidArgumentError);
}

TEST(AccessOrder, ParsesThePaperString) {
  const AccessOrder order = parse_access_order("r(Ap)p(xp)(Ap)r(rp)");
  ASSERT_EQ(order.phases.size(), 7u);
  EXPECT_EQ(order.phases[0], (AccessPhase{"r"}));
  EXPECT_EQ(order.phases[1], (AccessPhase{"A", "p"}));
  EXPECT_EQ(order.phases[6], (AccessPhase{"r", "p"}));
}

TEST(AccessOrder, CountsAppearances) {
  const AccessOrder order = parse_access_order("r(Ap)p(xp)(Ap)r(rp)");
  // p appears in (Ap), standalone p, (xp), (Ap), (rp): five phases.
  EXPECT_EQ(order.appearances("p"), 5u);
  EXPECT_EQ(order.appearances("r"), 3u);
  EXPECT_EQ(order.appearances("A"), 2u);
  EXPECT_EQ(order.appearances("x"), 1u);
  EXPECT_EQ(order.appearances("z"), 0u);
}

TEST(AccessOrder, ConcurrencySets) {
  const AccessOrder order = parse_access_order("r(Ap)p(xp)(Ap)r(rp)");
  EXPECT_EQ(order.concurrent_with("p"),
            (std::vector<std::string>{"A", "x", "r"}));
  EXPECT_EQ(order.concurrent_with("A"), (std::vector<std::string>{"p"}));
  EXPECT_TRUE(order.concurrent_with("q").empty());
}

TEST(AccessOrder, WhitespaceIgnored) {
  const AccessOrder order = parse_access_order(" r ( A p ) ");
  ASSERT_EQ(order.phases.size(), 2u);
  EXPECT_EQ(order.phases[1], (AccessPhase{"A", "p"}));
}

TEST(AccessOrder, RejectsMalformedStrings) {
  EXPECT_THROW((void)parse_access_order("(("), ParseError);
  EXPECT_THROW((void)parse_access_order("a)b"), ParseError);
  EXPECT_THROW((void)parse_access_order("()"), ParseError);
  EXPECT_THROW((void)parse_access_order("(ab"), ParseError);
  EXPECT_THROW((void)parse_access_order("a-b"), ParseError);
}

TEST(AccessOrder, EmptyStringIsEmptyOrder) {
  const AccessOrder order = parse_access_order("");
  EXPECT_TRUE(order.phases.empty());
  EXPECT_EQ(order.appearances("a"), 0u);
}

}  // namespace
}  // namespace dvf::dsl
