#!/usr/bin/env bash
# CLI contract tests for dvfc's exit codes and usage diagnostics:
#   0 success, 1 model/evaluation errors, 2 bad usage, 3 internal.
# Run as: test_dvfc_cli.sh <path-to-dvfc>
set -u

DVFC=${1:?usage: test_dvfc_cli.sh <path-to-dvfc>}
FAILURES=0

# expect_exit <code> <stderr-pattern|-> <args...>
expect_exit() {
  local want_code=$1 pattern=$2
  shift 2
  local stderr_file
  stderr_file=$(mktemp)
  "$DVFC" "$@" >/dev/null 2>"$stderr_file"
  local got_code=$?
  if [ "$got_code" -ne "$want_code" ]; then
    echo "FAIL: dvfc $* -> exit $got_code, want $want_code" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    FAILURES=$((FAILURES + 1))
  elif [ "$pattern" != "-" ] && ! grep -q "$pattern" "$stderr_file"; then
    echo "FAIL: dvfc $* -> stderr missing '$pattern'" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: dvfc $* -> exit $got_code"
  fi
  rm -f "$stderr_file"
}

# --- flag-value rejection: exit 2 plus a usage hint, not a crash ------------
expect_exit 2 "expects" kernels --threads abc
expect_exit 2 "run 'dvfc' without arguments for usage" kernels --threads abc
expect_exit 2 "expects" campaign VM --ci-width nope
expect_exit 2 "expects" campaign VM --ci-width inf
expect_exit 2 "expects" replay /dev/null --threads abc
expect_exit 2 "expects lru, plru or rrip" replay /dev/null --policy fifo
expect_exit 2 "expects v1 or v2" trace VM /dev/null --format v3
expect_exit 2 "unknown option --policy" trace VM /dev/null --policy lru

# --- the sharded trace/replay round trip, both wire formats -----------------
TMP_TRACE=$(mktemp --suffix=.dvft)
expect_exit 0 - trace VM "$TMP_TRACE"
expect_exit 0 - replay "$TMP_TRACE" --threads 4 --policy rrip
expect_exit 0 - trace VM "$TMP_TRACE" --format v1
expect_exit 0 - replay "$TMP_TRACE" --threads 2
rm -f "$TMP_TRACE"

# --- the global --deadline flag ---------------------------------------------
expect_exit 2 "positive number of seconds" kernels --deadline -5
expect_exit 2 "positive number of seconds" kernels --deadline 0
expect_exit 2 "positive number of seconds" kernels --deadline banana
expect_exit 2 "positive number of seconds" kernels --deadline 1.5x
# An absurdly tight deadline is a *model evaluation* failure (exit 1) with
# the classified taxonomy kind in the message — not a hang, not bad usage.
expect_exit 1 "deadline_exceeded" kernels --deadline 0.000001
# A generous deadline leaves a healthy run untouched.
expect_exit 0 - kernels VM --deadline 30
MODEL="$(cd "$(dirname "$0")" && pwd)/../models/vm.aspen"
if [ -f "$MODEL" ]; then
  expect_exit 0 - check "$MODEL"
else
  echo "skip: $MODEL not found" >&2
fi
# Unknown commands report usage and exit 2.
expect_exit 2 "usage:" frobnicate

# --- overflowing numeric literals are positioned diagnostics (DVF-E018) -----
TMP_MODEL=$(mktemp --suffix=.aspen)
printf 'param big = 1e999;\n' >"$TMP_MODEL"
stderr_file=$(mktemp)
"$DVFC" lint "$TMP_MODEL" >"$stderr_file" 2>&1
code=$?
if [ "$code" -ne 1 ]; then
  echo "FAIL: dvfc lint (E018 case) -> exit $code, want 1" >&2
  FAILURES=$((FAILURES + 1))
elif ! grep -q "DVF-E018" "$stderr_file"; then
  echo "FAIL: dvfc lint (E018 case) did not report DVF-E018" >&2
  sed 's/^/  out: /' "$stderr_file" >&2
  FAILURES=$((FAILURES + 1))
elif ! grep -q "1:13" "$stderr_file"; then
  echo "FAIL: E018 diagnostic missing the literal's position 1:13" >&2
  sed 's/^/  out: /' "$stderr_file" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: dvfc lint reports DVF-E018 at the literal's span"
fi
rm -f "$TMP_MODEL" "$stderr_file"

# --- no-argument invocation prints usage and exits 2 ------------------------
"$DVFC" >/dev/null 2>&1
if [ $? -ne 2 ]; then
  echo "FAIL: bare dvfc should exit 2" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: bare dvfc -> exit 2"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES CLI contract failure(s)" >&2
  exit 1
fi
echo "all dvfc CLI contract checks passed"
