#!/usr/bin/env bash
# CLI contract tests for dvfc's exit codes and usage diagnostics:
#   0 success, 1 model/evaluation errors, 2 bad usage, 3 internal.
# Run as: test_dvfc_cli.sh <path-to-dvfc>
set -u

DVFC=${1:?usage: test_dvfc_cli.sh <path-to-dvfc>}
FAILURES=0

# expect_exit <code> <stderr-pattern|-> <args...>
expect_exit() {
  local want_code=$1 pattern=$2
  shift 2
  local stderr_file
  stderr_file=$(mktemp)
  "$DVFC" "$@" >/dev/null 2>"$stderr_file"
  local got_code=$?
  if [ "$got_code" -ne "$want_code" ]; then
    echo "FAIL: dvfc $* -> exit $got_code, want $want_code" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    FAILURES=$((FAILURES + 1))
  elif [ "$pattern" != "-" ] && ! grep -q "$pattern" "$stderr_file"; then
    echo "FAIL: dvfc $* -> stderr missing '$pattern'" >&2
    sed 's/^/  stderr: /' "$stderr_file" >&2
    FAILURES=$((FAILURES + 1))
  else
    echo "ok: dvfc $* -> exit $got_code"
  fi
  rm -f "$stderr_file"
}

# --- flag-value rejection: exit 2 plus a usage hint, not a crash ------------
expect_exit 2 "expects" kernels --threads abc
expect_exit 2 "run 'dvfc' without arguments for usage" kernels --threads abc
expect_exit 2 "expects" campaign VM --ci-width nope
expect_exit 2 "expects" campaign VM --ci-width inf
expect_exit 2 "expects" replay /dev/null --threads abc
expect_exit 2 "expects lru, plru or rrip" replay /dev/null --policy fifo
expect_exit 2 "expects v1 or v2" trace VM /dev/null --format v3
expect_exit 2 "unknown option --policy" trace VM /dev/null --policy lru

# --- the sharded trace/replay round trip, both wire formats -----------------
TMP_TRACE=$(mktemp --suffix=.dvft)
expect_exit 0 - trace VM "$TMP_TRACE"
expect_exit 0 - replay "$TMP_TRACE" --threads 4 --policy rrip
expect_exit 0 - trace VM "$TMP_TRACE" --format v1
expect_exit 0 - replay "$TMP_TRACE" --threads 2
rm -f "$TMP_TRACE"

# --- the global --deadline flag ---------------------------------------------
expect_exit 2 "positive number of seconds" kernels --deadline -5
expect_exit 2 "positive number of seconds" kernels --deadline 0
expect_exit 2 "positive number of seconds" kernels --deadline banana
expect_exit 2 "positive number of seconds" kernels --deadline 1.5x
# An absurdly tight deadline is a *model evaluation* failure (exit 1) with
# the classified taxonomy kind in the message — not a hang, not bad usage.
expect_exit 1 "deadline_exceeded" kernels --deadline 0.000001
# A generous deadline leaves a healthy run untouched.
expect_exit 0 - kernels VM --deadline 30
MODEL="$(cd "$(dirname "$0")" && pwd)/../models/vm.aspen"
if [ -f "$MODEL" ]; then
  expect_exit 0 - check "$MODEL"
else
  echo "skip: $MODEL not found" >&2
fi
# Unknown commands report usage and exit 2.
expect_exit 2 "usage:" frobnicate

# --- overflowing numeric literals are positioned diagnostics (DVF-E018) -----
TMP_MODEL=$(mktemp --suffix=.aspen)
printf 'param big = 1e999;\n' >"$TMP_MODEL"
stderr_file=$(mktemp)
"$DVFC" lint "$TMP_MODEL" >"$stderr_file" 2>&1
code=$?
if [ "$code" -ne 1 ]; then
  echo "FAIL: dvfc lint (E018 case) -> exit $code, want 1" >&2
  FAILURES=$((FAILURES + 1))
elif ! grep -q "DVF-E018" "$stderr_file"; then
  echo "FAIL: dvfc lint (E018 case) did not report DVF-E018" >&2
  sed 's/^/  out: /' "$stderr_file" >&2
  FAILURES=$((FAILURES + 1))
elif ! grep -q "1:13" "$stderr_file"; then
  echo "FAIL: E018 diagnostic missing the literal's position 1:13" >&2
  sed 's/^/  out: /' "$stderr_file" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: dvfc lint reports DVF-E018 at the literal's span"
fi
rm -f "$TMP_MODEL" "$stderr_file"

# --- the analyze exit-code contract (0 clean / 1 findings / 2 usage) --------
# Mirrors lint: notes keep exit 0, --werror promotes warnings, bad flags and
# unreadable files are usage errors.
if [ -f "$MODEL" ]; then
  expect_exit 0 - analyze "$MODEL"
  expect_exit 0 - analyze "$MODEL" --json --threads 2
  expect_exit 2 "unknown option" analyze "$MODEL" --csv
else
  echo "skip: $MODEL not found" >&2
fi
expect_exit 2 "usage:" analyze
expect_exit 2 "cannot open" analyze /nonexistent/model.aspen
TMP_MODEL=$(mktemp --suffix=.aspen)
# A dead structure is a provable A301 warning: clean exit without --werror,
# failure with it.
printf 'model "M" { time 1.0; data idle { elements 8; element_size 8; } }\n' \
  >"$TMP_MODEL"
expect_exit 0 - analyze "$TMP_MODEL"
expect_exit 1 - analyze "$TMP_MODEL" --werror
stderr_file=$(mktemp)
"$DVFC" analyze "$TMP_MODEL" >"$stderr_file" 2>&1
if ! grep -q "DVF-A301" "$stderr_file"; then
  echo "FAIL: dvfc analyze did not report DVF-A301 for a dead structure" >&2
  sed 's/^/  out: /' "$stderr_file" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: dvfc analyze reports DVF-A301 for a dead structure"
fi
# Lowering errors keep the lint contract: exit 1 with the Exxx code.
printf 'model "M" { pattern Z stream { stride 1; } }\n' >"$TMP_MODEL"
"$DVFC" analyze "$TMP_MODEL" >"$stderr_file" 2>&1
code=$?
if [ "$code" -ne 1 ]; then
  echo "FAIL: dvfc analyze (E009 case) -> exit $code, want 1" >&2
  FAILURES=$((FAILURES + 1))
elif ! grep -q "DVF-E009" "$stderr_file"; then
  echo "FAIL: dvfc analyze (E009 case) did not report DVF-E009" >&2
  sed 's/^/  out: /' "$stderr_file" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: dvfc analyze reports lowering errors with exit 1"
fi
# The canonical hash is printed and stable across thread counts.
printf 'model "M" { time 1.0; data A { elements 64; element_size 8; }
pattern A stream { stride 1; } }\n' >"$TMP_MODEL"
hash1=$("$DVFC" analyze "$TMP_MODEL" --threads 1 | grep "canonical hash")
hash4=$("$DVFC" analyze "$TMP_MODEL" --threads 4 | grep "canonical hash")
if [ -z "$hash1" ] || [ "$hash1" != "$hash4" ]; then
  echo "FAIL: canonical hash missing or unstable across --threads" >&2
  echo "  threads 1: $hash1" >&2
  echo "  threads 4: $hash4" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: dvfc analyze canonical hash stable across --threads"
fi
rm -f "$TMP_MODEL" "$stderr_file"

# --- dvfc serve: transport selection is bad usage, stdio batch works --------
# Exactly one of --socket/--stdio must be given.
expect_exit 2 "exactly one transport" serve
expect_exit 2 "exactly one transport" serve --stdio --socket /tmp/x.sock
expect_exit 2 "unknown option" serve --stdio --frobnicate 1
expect_exit 2 "must be positive" serve --stdio --queue 0
expect_exit 2 "must be positive" serve --stdio --max-connections 0
# A stdio batch: every frame gets a response line, EOF drains cleanly (exit
# 0), and the duplicate source is served from the compiled-model cache.
stderr_file=$(mktemp)
out_file=$(mktemp)
printf '%s\n%s\n%s\n%s\n' \
  '{"id":1,"op":"ping"}' \
  '{"id":2,"op":"eval","source":"model \"m\" { time 1; data A { elements 8; element_size 8; } pattern A stream { stride 1; } }"}' \
  '{"id":3,"op":"eval","source":"model \"m\" { time 1; data A { elements 8; element_size 8; } pattern A stream { stride 1; } }"}' \
  'this is not json' \
  | "$DVFC" serve --stdio --workers 2 >"$out_file" 2>"$stderr_file"
code=$?
if [ "$code" -ne 0 ]; then
  echo "FAIL: dvfc serve --stdio batch -> exit $code, want 0" >&2
  sed 's/^/  stderr: /' "$stderr_file" >&2
  FAILURES=$((FAILURES + 1))
elif [ "$(wc -l <"$out_file")" -ne 4 ]; then
  echo "FAIL: dvfc serve --stdio batch: want 4 response lines" >&2
  sed 's/^/  out: /' "$out_file" >&2
  FAILURES=$((FAILURES + 1))
elif ! grep -q '"cache":"hit"' "$out_file"; then
  echo "FAIL: dvfc serve --stdio batch: duplicate source did not hit cache" >&2
  sed 's/^/  out: /' "$out_file" >&2
  FAILURES=$((FAILURES + 1))
elif ! grep -q '"kind":"parse_error"' "$out_file"; then
  echo "FAIL: dvfc serve --stdio batch: garbage frame not a parse_error" >&2
  sed 's/^/  out: /' "$out_file" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: dvfc serve --stdio batch (4 responses, cache hit, typed errors)"
fi
rm -f "$out_file" "$stderr_file"

# --- no-argument invocation prints usage and exits 2 ------------------------
"$DVFC" >/dev/null 2>&1
if [ $? -ne 2 ]; then
  echo "FAIL: bare dvfc should exit 2" >&2
  FAILURES=$((FAILURES + 1))
else
  echo "ok: bare dvfc -> exit 2"
fi

if [ "$FAILURES" -ne 0 ]; then
  echo "$FAILURES CLI contract failure(s)" >&2
  exit 1
fi
echo "all dvfc CLI contract checks passed"
