// Unit tests for the ECC trade-off explorer (§V-B / Fig. 7 machinery).
#include "dvf/dvf/ecc.hpp"

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"
#include "dvf/machine/cache_config.hpp"

namespace dvf {
namespace {

ModelSpec model() {
  ModelSpec spec;
  spec.name = "m";
  spec.exec_time_seconds = 1.0;
  DataStructureSpec ds;
  ds.name = "A";
  ds.size_bytes = 1 << 20;
  StreamingSpec s;
  s.element_bytes = 8;
  s.element_count = (1 << 20) / 8;
  s.stride_elements = 1;
  ds.patterns.emplace_back(s);
  spec.structures.push_back(std::move(ds));
  return spec;
}

EccTradeoffExplorer explorer() {
  return {Machine::with_cache(caches::profiling_8mb()), model()};
}

TEST(EccSweep, ZeroDegradationMeansNoProtection) {
  EccSweepConfig config;
  const auto points = explorer().sweep(config);
  ASSERT_FALSE(points.empty());
  EXPECT_DOUBLE_EQ(points.front().degradation, 0.0);
  EXPECT_DOUBLE_EQ(points.front().coverage, 0.0);
  EXPECT_DOUBLE_EQ(points.front().effective_fit, config.raw_fit);
}

TEST(EccSweep, CoverageSaturatesAtFullCoverageDegradation) {
  EccSweepConfig config;
  config.full_coverage_degradation = 0.05;
  const auto points = explorer().sweep(config);
  for (const auto& pt : points) {
    if (pt.degradation >= 0.05 - 1e-9) {
      EXPECT_DOUBLE_EQ(pt.coverage, 1.0);
      EXPECT_NEAR(pt.effective_fit, fit_rate(config.scheme), 1e-9);
    } else {
      EXPECT_LT(pt.coverage, 1.0);
    }
  }
}

TEST(EccSweep, MinimumSitsAtFullCoverage) {
  EccSweepConfig config;
  config.scheme = EccScheme::kSecDed;
  const auto points = explorer().sweep(config);
  EXPECT_NEAR(EccTradeoffExplorer::optimal_degradation(points), 0.05, 1e-9);
}

TEST(EccSweep, DvfFallsThenRises) {
  EccSweepConfig config;
  const auto points = explorer().sweep(config);
  // Strictly decreasing while coverage grows, strictly increasing after.
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].degradation <= config.full_coverage_degradation + 1e-9) {
      EXPECT_LT(points[i].dvf, points[i - 1].dvf) << "i=" << i;
    } else {
      EXPECT_GT(points[i].dvf, points[i - 1].dvf) << "i=" << i;
    }
  }
}

TEST(EccSweep, ChipkillDominatesSecdedAtFullCoverage) {
  EccSweepConfig secded;
  secded.scheme = EccScheme::kSecDed;
  EccSweepConfig chipkill;
  chipkill.scheme = EccScheme::kChipkill;
  const auto s = explorer().sweep(secded);
  const auto c = explorer().sweep(chipkill);
  ASSERT_EQ(s.size(), c.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i].coverage > 0.0) {
      EXPECT_LT(c[i].dvf, s[i].dvf) << "i=" << i;
    }
  }
}

TEST(EccSweep, ProtectionAlwaysBeatsNoProtectionWithinBudget) {
  EccSweepConfig config;
  const auto points = explorer().sweep(config);
  const double unprotected = points.front().dvf;
  for (const auto& pt : points) {
    EXPECT_LE(pt.dvf, unprotected * (1.0 + config.max_degradation) + 1e-12);
  }
}

TEST(EccSweep, RejectsBadConfigs) {
  EccSweepConfig config;
  config.step = 0.0;
  EXPECT_THROW((void)explorer().sweep(config), InvalidArgumentError);
  config.step = 0.01;
  config.full_coverage_degradation = 0.0;
  EXPECT_THROW((void)explorer().sweep(config), InvalidArgumentError);
}

TEST(EccExplorer, RequiresExecutionTime) {
  ModelSpec spec = model();
  spec.exec_time_seconds.reset();
  EXPECT_THROW(EccTradeoffExplorer(
                   Machine::with_cache(caches::profiling_8mb()), spec),
               SemanticError);
}

TEST(EccExplorer, OptimalDegradationRejectsEmptySweep) {
  EXPECT_THROW((void)EccTradeoffExplorer::optimal_degradation({}),
               InvalidArgumentError);
}

}  // namespace
}  // namespace dvf
