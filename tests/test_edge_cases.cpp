// Cross-cutting edge cases not covered by the per-module suites.
#include <gtest/gtest.h>

#include <variant>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/cachesim/hierarchy.hpp"
#include "dvf/dsl/lexer.hpp"
#include "dvf/dvf/inference.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/estimate.hpp"

namespace dvf {
namespace {

TEST(EdgeCases, AccessSpanningManyLinesProbesAll) {
  CacheSimulator sim({"tiny", 2, 2, 16});
  sim.on_load(0, 8, 64);  // bytes 8..71: lines 0..4 -> 5 probes
  EXPECT_EQ(sim.stats(0).accesses, 5u);
  EXPECT_EQ(sim.stats(0).misses, 5u);
}

TEST(EdgeCases, ThreeLevelHierarchyCascades) {
  CacheHierarchy h({{"l1", 1, 2, 16}, {"l2", 2, 4, 16}, {"l3", 4, 8, 16}});
  EXPECT_EQ(h.levels(), 3u);
  h.on_store(0, 0, 4);
  h.flush();
  // The dirty line travelled l1 -> l2 -> l3 -> memory.
  EXPECT_EQ(h.level_stats(2, 0).writebacks, 1u);
  EXPECT_EQ(h.main_memory_accesses(0), 2u);  // one fetch + one writeback
}

TEST(EdgeCases, LexerTreatsSuffixWithoutNumberAsIdentifier) {
  const auto tokens = dsl::tokenize("KB 4KB");
  EXPECT_TRUE(tokens[0].is_word("KB"));
  EXPECT_DOUBLE_EQ(tokens[1].number, 4096.0);
}

TEST(EdgeCases, LexerHandlesAdjacentOperators) {
  const auto tokens = dsl::tokenize("1--2");
  // number, minus, minus, number
  EXPECT_EQ(tokens.size(), 5u);
}

TEST(EdgeCases, SingleElementTemplate) {
  TemplateSpec t;
  t.element_bytes = 8;
  t.element_indices = {7};
  t.repetitions = 100;
  const CacheConfig c("c", 4, 64, 32);
  // First touch misses, every repetition hits.
  EXPECT_DOUBLE_EQ(estimate_template(t, c), 1.0);
}

TEST(EdgeCases, StreamingWithElementEqualLineAndStride) {
  StreamingSpec s;
  s.element_bytes = 32;
  s.element_count = 64;
  s.stride_elements = 1;
  const CacheConfig c("c", 4, 64, 32);
  // CL == E, S == E: one line per element.
  EXPECT_DOUBLE_EQ(estimate_streaming(s, c), 64.0);
}

TEST(EdgeCases, PatternLettersMatchPaperNotation) {
  EXPECT_EQ(pattern_letter(PatternSpec{StreamingSpec{}}), 's');
  RandomSpec r;
  EXPECT_EQ(pattern_letter(PatternSpec{r}), 'r');
  TemplateSpec t;
  EXPECT_EQ(pattern_letter(PatternSpec{t}), 't');
  ReuseSpec u;
  EXPECT_EQ(pattern_letter(PatternSpec{u}), 'u');
}

TEST(EdgeCases, InferenceHandlesSingleReference) {
  const std::vector<std::uint64_t> idx = {42};
  const auto patterns = infer_patterns(idx, 8, 100);
  ASSERT_EQ(patterns.size(), 1u);
  // One reference is a (trivial) template.
  EXPECT_TRUE(std::holds_alternative<TemplateSpec>(patterns[0]));
}

TEST(EdgeCases, InferenceDescendingStreamIsNotStreaming) {
  // Backward traversals are not the paper's streaming pattern; they fall
  // through to the template path (and are still modeled exactly).
  std::vector<std::uint64_t> idx;
  for (std::uint64_t i = 100; i-- > 0;) {
    idx.push_back(i);
  }
  const auto patterns = infer_patterns(idx, 8, 100);
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<TemplateSpec>(patterns[0]));
}

TEST(EdgeCases, HierarchySameConfigTwiceStillCoherent) {
  // Degenerate but legal: two identical levels; the second only sees the
  // first's misses.
  CacheConfig config("c", 2, 4, 16);
  CacheHierarchy h({config, config});
  for (std::uint64_t a = 0; a < 512; a += 16) {
    h.on_load(0, a, 4);
  }
  EXPECT_EQ(h.level_stats(0, 0).misses, h.level_stats(1, 0).accesses);
}

}  // namespace
}  // namespace dvf
