// Tests for the fault-injection substrate and campaign driver.
#include "dvf/kernels/injection_campaign.hpp"
#include "dvf/trace/fault_injection.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/kernels/suite.hpp"

namespace dvf {
namespace {

TEST(FaultInjectingRecorder, FlipsExactlyOnceAtTheTrigger) {
  std::uint8_t target = 0b0000'0100;
  FaultSpec fault;
  fault.trigger_reference = 3;
  fault.target_byte = &target;
  fault.bit = 1;
  FaultInjectingRecorder rec(fault);

  rec.on_load(0, 0, 8);
  EXPECT_FALSE(rec.injected());
  EXPECT_EQ(target, 0b0000'0100);
  rec.on_store(0, 0, 8);
  rec.on_load(0, 0, 8);  // third reference: flip
  EXPECT_TRUE(rec.injected());
  EXPECT_EQ(target, 0b0000'0110);
  rec.on_load(0, 0, 8);  // no further flips
  EXPECT_EQ(target, 0b0000'0110);
  EXPECT_EQ(rec.references(), 4u);
  EXPECT_EQ(rec.original_value(), 0b0000'0100);

  rec.restore();
  EXPECT_EQ(target, 0b0000'0100);
}

TEST(FaultInjectingRecorder, NeverFiresWhenRunEndsEarly) {
  std::uint8_t target = 7;
  FaultSpec fault;
  fault.trigger_reference = 100;
  fault.target_byte = &target;
  FaultInjectingRecorder rec(fault);
  rec.on_load(0, 0, 8);
  EXPECT_FALSE(rec.injected());
  rec.restore();  // no-op
  EXPECT_EQ(target, 7);
}

TEST(FaultInjectingRecorder, Validation) {
  FaultSpec fault;
  EXPECT_THROW(FaultInjectingRecorder{fault}, InvalidArgumentError);
  std::uint8_t b = 0;
  fault.target_byte = &b;
  fault.bit = 8;
  EXPECT_THROW(FaultInjectingRecorder{fault}, InvalidArgumentError);
  fault.bit = 0;
  fault.trigger_reference = 0;
  EXPECT_THROW(FaultInjectingRecorder{fault}, InvalidArgumentError);
}

TEST(KernelInjection, FlipInInputBeforeUseCorruptsVmChecksum) {
  kernels::KernelCaseAdapter<kernels::VectorMultiply> vm(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 100,
                                                     .stride_a = 1});
  const auto a = *vm.registry().find("A");
  // Flip a high bit of A[50] before anything runs (trigger 1); element 50
  // is read at iteration 50, so the product must change.
  const auto outcome = vm.run_injected(a, 1, 50 * 4 + 1, 7);
  EXPECT_TRUE(outcome.injected);
  EXPECT_TRUE(outcome.corrupted);
  EXPECT_GT(outcome.deviation, 0.0);
}

TEST(KernelInjection, FlipAfterLastUseIsBenign) {
  kernels::KernelCaseAdapter<kernels::VectorMultiply> vm(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 100,
                                                     .stride_a = 1});
  const auto a = *vm.registry().find("A");
  const std::uint64_t total = vm.total_references();
  // Flip A's first element at the very last reference: every read already
  // happened, so the output is untouched.
  const auto outcome = vm.run_injected(a, total, 0, 7);
  EXPECT_TRUE(outcome.injected);
  EXPECT_FALSE(outcome.corrupted);
}

TEST(KernelInjection, TrialsAreIndependent) {
  kernels::KernelCaseAdapter<kernels::VectorMultiply> vm(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 100});
  const auto a = *vm.registry().find("A");
  const auto first = vm.run_injected(a, 1, 3, 6);
  // The restore undid the flip: a clean-trigger trial after it behaves as
  // if it were the first.
  const auto second = vm.run_injected(a, 1, 3, 6);
  EXPECT_EQ(first.corrupted, second.corrupted);
  EXPECT_DOUBLE_EQ(first.deviation, second.deviation);
}

TEST(KernelInjection, RejectsOutOfRangeOffsets) {
  kernels::KernelCaseAdapter<kernels::VectorMultiply> vm(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 10});
  const auto a = *vm.registry().find("A");
  EXPECT_THROW((void)vm.run_injected(a, 1, 1 << 20, 0), InvalidArgumentError);
}

TEST(Campaign, ProducesStatsForEveryModeledStructure) {
  kernels::KernelCaseAdapter<kernels::VectorMultiply> vm(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 200});
  kernels::CampaignConfig config;
  config.trials_per_structure = 30;
  const auto stats = kernels::run_injection_campaign(vm, config);
  ASSERT_EQ(stats.size(), 3u);  // A, B, C
  for (const auto& s : stats) {
    EXPECT_EQ(s.trials, 30u);
    EXPECT_EQ(s.injected, 30u);  // triggers always within the run
    EXPECT_LE(s.corrupted, s.trials);
  }
}

TEST(Campaign, DeterministicUnderASeed) {
  kernels::KernelCaseAdapter<kernels::VectorMultiply> a(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 200});
  kernels::KernelCaseAdapter<kernels::VectorMultiply> b(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 200});
  kernels::CampaignConfig config;
  config.trials_per_structure = 25;
  const auto sa = kernels::run_injection_campaign(a, config);
  const auto sb = kernels::run_injection_campaign(b, config);
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].corrupted, sb[i].corrupted) << sa[i].structure;
  }
}

TEST(RankCorrelation, KnownValues) {
  using kernels::rank_correlation;
  EXPECT_DOUBLE_EQ(rank_correlation({1, 2, 3}, {10, 20, 30}), 1.0);
  EXPECT_DOUBLE_EQ(rank_correlation({1, 2, 3}, {30, 20, 10}), -1.0);
  EXPECT_DOUBLE_EQ(rank_correlation({1, 1, 1}, {1, 2, 3}), 0.0);
  EXPECT_NEAR(rank_correlation({1, 2, 3, 4}, {1, 2, 4, 3}), 0.8, 1e-12);
  EXPECT_THROW((void)rank_correlation({1}, {1, 2}), InvalidArgumentError);
}

TEST(RankCorrelation, TieHeavyVectors) {
  using kernels::rank_correlation;
  // One tie in a: ranks {1, 2.5, 2.5, 4} vs {1, 2, 3, 4} — the Pearson
  // correlation of the rank vectors is sqrt(0.9).
  EXPECT_NEAR(rank_correlation({1, 2, 2, 4}, {1, 2, 3, 4}),
              std::sqrt(0.9), 1e-12);
  // Ties in both, same pattern: perfectly concordant.
  EXPECT_NEAR(rank_correlation({5, 5, 5, 1}, {7, 7, 7, 0}), 1.0, 1e-12);
  // Symmetric in its arguments.
  EXPECT_NEAR(rank_correlation({1, 2, 2, 4}, {1, 2, 3, 4}),
              rank_correlation({1, 2, 3, 4}, {1, 2, 2, 4}), 1e-12);
}

TEST(RankCorrelation, DegenerateInputs) {
  using kernels::rank_correlation;
  // A constant vector carries no ranking information on either side.
  EXPECT_DOUBLE_EQ(rank_correlation({2, 2, 2}, {1, 5, 9}), 0.0);
  EXPECT_DOUBLE_EQ(rank_correlation({3, 3}, {4, 4}), 0.0);
  // Fewer than two points: trivially concordant.
  EXPECT_DOUBLE_EQ(rank_correlation({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(rank_correlation({5}, {9}), 1.0);
}

TEST(RankCorrelation, PinnedSpearmanExample) {
  using kernels::rank_correlation;
  // Classic distinct-rank example (d² sum = 194, n = 10):
  // rho = 1 - 6*194/990 = -29/165.
  const std::vector<double> x = {86, 97, 99, 100, 101, 103, 106, 110, 112, 113};
  const std::vector<double> y = {0, 20, 28, 27, 50, 29, 7, 17, 6, 12};
  EXPECT_NEAR(rank_correlation(x, y), -29.0 / 165.0, 1e-12);
}

}  // namespace
}  // namespace dvf
