// In-process smoke over the fuzz + differential-oracle harness: each target
// must run a small batch (plus the checked-in corpus) clean, and runs must
// be deterministic in the seed. The CI fuzz-smoke job runs the same targets
// at much higher case counts through the dvf_fuzz CLI.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "dvf/fuzz/fuzzer.hpp"

namespace dvf::fuzz {
namespace {

std::string joined_findings(const FuzzReport& report) {
  std::string out;
  for (const auto& finding : report.findings) {
    out += "  " + finding + "\n";
  }
  return out;
}

FuzzOptions smoke_options(std::uint64_t cases) {
  FuzzOptions options;
  options.cases = cases;
  options.seed = 1;
  options.corpus_dir = DVF_FUZZ_CORPUS_DIR;
  return options;
}

TEST(FuzzSmoke, RoundtripRunsClean) {
  const FuzzReport report = fuzz_roundtrip(smoke_options(300));
  EXPECT_EQ(report.cases_run, 300u);
  EXPECT_TRUE(report.ok()) << joined_findings(report);
}

TEST(FuzzSmoke, EvalRunsClean) {
  const FuzzReport report = fuzz_eval(smoke_options(500));
  EXPECT_EQ(report.cases_run, 500u);
  EXPECT_TRUE(report.ok()) << joined_findings(report);
}

TEST(FuzzSmoke, OracleRunsClean) {
  const FuzzReport report = fuzz_oracle(smoke_options(150));
  EXPECT_EQ(report.cases_run, 150u);
  EXPECT_TRUE(report.ok()) << joined_findings(report);
}

TEST(FuzzSmoke, TraceRunsClean) {
  const FuzzReport report = fuzz_trace(smoke_options(200));
  EXPECT_EQ(report.cases_run, 200u);
  EXPECT_TRUE(report.ok()) << joined_findings(report);
}

TEST(FuzzSmoke, ChaosRunsClean) {
  const FuzzReport report = fuzz_chaos(smoke_options(30));
  EXPECT_EQ(report.cases_run, 30u);
  EXPECT_TRUE(report.ok()) << joined_findings(report);
}

TEST(FuzzSmoke, AnalyzeRunsClean) {
  const FuzzReport report = fuzz_analyze(smoke_options(150));
  EXPECT_EQ(report.cases_run, 150u);
  EXPECT_TRUE(report.ok()) << joined_findings(report);
}

TEST(FuzzSmoke, TraceRunsAreDeterministicInTheSeed) {
  FuzzOptions options = smoke_options(80);
  options.seed = 7;
  const FuzzReport a = fuzz_trace(options);
  const FuzzReport b = fuzz_trace(options);
  EXPECT_EQ(a.cases_run, b.cases_run);
  EXPECT_EQ(a.findings, b.findings);
}

TEST(FuzzSmoke, RunsAreDeterministicInTheSeed) {
  FuzzOptions options = smoke_options(100);
  options.seed = 42;
  const FuzzReport a = fuzz_roundtrip(options);
  const FuzzReport b = fuzz_roundtrip(options);
  EXPECT_EQ(a.cases_run, b.cases_run);
  EXPECT_EQ(a.findings, b.findings);
}

TEST(FuzzSmoke, TimeBoxStopsARunEarly) {
  FuzzOptions options = smoke_options(~std::uint64_t{0});  // unbounded cases
  options.max_seconds = 0.1;
  const FuzzReport report = fuzz_eval(options);
  EXPECT_GT(report.cases_run, 0u);
  EXPECT_LT(report.cases_run, ~std::uint64_t{0});
  EXPECT_TRUE(report.ok()) << joined_findings(report);
}

TEST(FuzzSmoke, ReportMergeAccumulates) {
  FuzzReport a;
  a.cases_run = 3;
  a.findings = {"x"};
  FuzzReport b;
  b.cases_run = 4;
  b.findings = {"y", "z"};
  a.merge(std::move(b));
  EXPECT_EQ(a.cases_run, 7u);
  EXPECT_EQ(a.findings.size(), 3u);
  EXPECT_FALSE(a.ok());
}

TEST(FuzzSmoke, DocumentedTolerancesMatchTheResilienceDoc) {
  // docs/resilience.md documents these bands; a silent widening here would
  // make the docs lie. Streaming is exact, the stochastic models carry the
  // paper's ±15% validation band.
  EXPECT_DOUBLE_EQ(kStreamingOracleTolerance, 0.0);
  EXPECT_DOUBLE_EQ(kRandomOracleTolerance, 0.15);
  EXPECT_DOUBLE_EQ(kTemplateOracleTolerance, 0.15);
  EXPECT_DOUBLE_EQ(kReuseOracleTolerance, 0.15);
  EXPECT_DOUBLE_EQ(kTiledOracleTolerance, 0.15);
}

}  // namespace
}  // namespace dvf::fuzz
