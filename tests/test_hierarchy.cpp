// Tests for the multi-level cache hierarchy.
#include "dvf/cachesim/hierarchy.hpp"

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"

namespace dvf {
namespace {

CacheHierarchy two_level() {
  // L1: 2-way, 4 sets, 16B lines (128 B); L2: 4-way, 16 sets (1 KiB).
  return CacheHierarchy({{"l1", 2, 4, 16}, {"l2", 4, 16, 16}});
}

TEST(Hierarchy, L1HitNeverReachesL2) {
  CacheHierarchy h = two_level();
  h.on_load(0, 0, 4);   // cold: L1 miss, L2 miss
  h.on_load(0, 4, 4);   // same line: L1 hit
  EXPECT_EQ(h.level_stats(0, 0).hits, 1u);
  EXPECT_EQ(h.level_stats(1, 0).accesses, 1u);
  EXPECT_EQ(h.main_memory_accesses(0), 1u);
}

TEST(Hierarchy, L1MissL2HitDoesNotTouchMemory) {
  CacheHierarchy h = two_level();
  // Fill L1's set 0 beyond capacity so an early line falls out of L1 but
  // stays in the larger L2.
  h.on_load(0, 0, 4);    // line 0 -> L1 set 0, L2 set 0
  h.on_load(0, 64, 4);   // line 4 -> L1 set 0, L2 set 4
  h.on_load(0, 128, 4);  // line 8 -> evicts line 0 from L1
  h.on_load(0, 0, 4);    // L1 miss, L2 hit
  EXPECT_EQ(h.level_stats(1, 0).hits, 1u);
  EXPECT_EQ(h.main_memory_accesses(0), 3u);  // three distinct lines fetched
}

TEST(Hierarchy, DirtyL1EvictionWritesBackIntoL2) {
  CacheHierarchy h = two_level();
  h.on_store(0, 0, 4);   // dirty line 0 in L1
  h.on_load(0, 64, 4);
  h.on_load(0, 128, 4);  // evicts dirty line 0 from L1 -> write into L2
  EXPECT_EQ(h.level_stats(0, 0).writebacks, 1u);
  // Line 0 is dirty in L2 now; flushing pushes it to memory.
  h.flush();
  EXPECT_GE(h.level_stats(1, 0).writebacks, 1u);
}

TEST(Hierarchy, FlushCascadesToMemory) {
  CacheHierarchy h = two_level();
  h.on_store(0, 0, 4);
  h.flush();
  // The dirty line travels L1 -> L2 -> memory: exactly one memory writeback.
  EXPECT_EQ(h.level_stats(1, 0).writebacks, 1u);
  EXPECT_EQ(h.main_memory_accesses(0),
            h.level_stats(1, 0).misses + h.level_stats(1, 0).writebacks);
}

TEST(Hierarchy, ResetClearsAllLevels) {
  CacheHierarchy h = two_level();
  h.on_store(0, 0, 4);
  h.reset();
  EXPECT_EQ(h.level_stats(0, 0).accesses, 0u);
  EXPECT_EQ(h.level_stats(1, 0).accesses, 0u);
}

TEST(Hierarchy, SingleLevelEquivalentToPlainSimulator) {
  CacheConfig config("only", 4, 64, 32);
  CacheHierarchy h({config});
  CacheSimulator reference(config);
  Xoshiro256 rng(11);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr = rng.below(1 << 16);
    const bool write = (rng() & 1) != 0;
    h.access(addr, 4, write, 0);
    reference.access(addr, 4, write, 0);
  }
  h.flush();
  reference.flush();
  EXPECT_EQ(h.level_stats(0, 0).misses, reference.stats(0).misses);
  EXPECT_EQ(h.level_stats(0, 0).writebacks, reference.stats(0).writebacks);
}

TEST(Hierarchy, UpperLevelFiltersButMemoryTrafficStaysClose) {
  // The paper's LLC-only assumption: adding an L1 changes which level
  // absorbs hits, but memory traffic is governed by the LLC. For an
  // LRU-friendly working set the last-level misses must match an LLC-only
  // simulation exactly.
  CacheConfig llc("llc", 8, 64, 32);  // 16 KiB
  CacheHierarchy with_l1({{"l1", 2, 16, 32}, llc});
  CacheSimulator only_llc(llc);

  Xoshiro256 rng(23);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t addr = rng.below(8 * 1024);  // 8 KiB set: fits LLC
    with_l1.access(addr, 4, false, 0);
    only_llc.access(addr, 4, false, 0);
  }
  // Everything fits the LLC: only compulsory misses either way. The L1
  // filters most probes away from the LLC, but memory traffic is equal.
  EXPECT_EQ(with_l1.main_memory_accesses(0),
            only_llc.stats(0).main_memory_accesses());
  EXPECT_LT(with_l1.level_stats(1, 0).accesses, only_llc.stats(0).accesses);
}

TEST(Hierarchy, RejectsBadConfigurations) {
  EXPECT_THROW(CacheHierarchy({}), InvalidArgumentError);
  EXPECT_THROW(CacheHierarchy({{"a", 2, 4, 16}, {"b", 4, 16, 32}}),
               InvalidArgumentError);
  CacheHierarchy h = two_level();
  EXPECT_THROW(h.access(0, 0, false, 0), InvalidArgumentError);
  EXPECT_THROW((void)h.level_stats(2, 0), InvalidArgumentError);
}

}  // namespace
}  // namespace dvf
