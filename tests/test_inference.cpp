// Tests for pattern inference (trace -> model).
#include "dvf/dvf/inference.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <variant>

#include "dvf/analysis/ir.hpp"
#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/kernels/fft.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/estimate.hpp"
#include "dvf/trace/trace_io.hpp"
#include "dvf/trace/trace_reader.hpp"

namespace dvf {
namespace {

TEST(InferPatterns, DetectsUnitStrideStreaming) {
  std::vector<std::uint64_t> idx;
  for (std::uint64_t i = 0; i < 100; ++i) {
    idx.push_back(i);
  }
  const auto patterns = infer_patterns(idx, 8, 100);
  ASSERT_EQ(patterns.size(), 1u);
  const auto* s = std::get_if<StreamingSpec>(&patterns[0]);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->stride_elements, 1u);
  EXPECT_EQ(s->element_count, 100u);
}

TEST(InferPatterns, DetectsStridedStreamingWithMultipleSweeps) {
  std::vector<std::uint64_t> idx;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (std::uint64_t i = 0; i < 50; ++i) {
      idx.push_back(i * 4);
    }
  }
  const auto patterns = infer_patterns(idx, 8, 200);
  ASSERT_EQ(patterns.size(), 3u);
  for (const auto& p : patterns) {
    const auto* s = std::get_if<StreamingSpec>(&p);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->stride_elements, 4u);
  }
}

TEST(InferPatterns, DetectsPeriodicTemplates) {
  const std::vector<std::uint64_t> base = {5, 1, 9, 1, 7};
  std::vector<std::uint64_t> idx;
  for (int rep = 0; rep < 6; ++rep) {
    idx.insert(idx.end(), base.begin(), base.end());
  }
  const auto patterns = infer_patterns(idx, 8, 10);
  ASSERT_EQ(patterns.size(), 1u);
  const auto* t = std::get_if<TemplateSpec>(&patterns[0]);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->element_indices, base);
  EXPECT_EQ(t->repetitions, 6u);
}

TEST(InferPatterns, IrregularStreamBecomesLiteralTemplate) {
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> idx;
  for (int i = 0; i < 1000; ++i) {
    idx.push_back(rng.below(64));
  }
  const auto patterns = infer_patterns(idx, 8, 64);
  ASSERT_EQ(patterns.size(), 1u);
  const auto* t = std::get_if<TemplateSpec>(&patterns[0]);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->element_indices.size() * t->repetitions, 1000u);
}

TEST(InferPatterns, OverBudgetStreamBecomesIrmRandom) {
  Xoshiro256 rng(4);
  std::vector<std::uint64_t> idx;
  for (int i = 0; i < 2000; ++i) {
    idx.push_back(rng.below(128));
  }
  InferenceOptions options;
  options.literal_template_limit = 100;  // force the fallback
  const auto patterns = infer_patterns(idx, 8, 128, options);
  ASSERT_EQ(patterns.size(), 1u);
  const auto* r = std::get_if<RandomSpec>(&patterns[0]);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->element_count, 128u);
  EXPECT_FALSE(r->sorted_visit_fractions.empty());
}

TEST(InferPatterns, EmptyStreamYieldsNothing) {
  EXPECT_TRUE(infer_patterns({}, 8, 10).empty());
}

TEST(InferModel, RecoversVmAsStreaming) {
  kernels::KernelCaseAdapter<kernels::VectorMultiply> vm(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 500});
  TraceBuffer buffer;
  vm.run_buffered(buffer);

  TraceFile trace;
  for (const auto& info : vm.registry()) {
    trace.structures.push_back(info);
  }
  trace.records = buffer.records();

  const ModelSpec inferred = infer_model(trace);
  ASSERT_EQ(inferred.structures.size(), 3u);
  const auto* a = inferred.find("A");
  ASSERT_NE(a, nullptr);
  const auto* s = std::get_if<StreamingSpec>(&a->patterns.front());
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->stride_elements, 4u);
}

TEST(InferModel, InferredFftModelPredictsSimulatedMissesExactly) {
  // The literal-template path makes the inferred model's stack-distance
  // count near-exact for a fully-associative-friendly stream.
  kernels::KernelCaseAdapter<kernels::Fft1D> fft(
      "FT", "spectral", kernels::Fft1D::Config{.n = 512});
  TraceBuffer buffer;
  fft.run_buffered(buffer);
  TraceFile trace;
  for (const auto& info : fft.registry()) {
    trace.structures.push_back(info);
  }
  trace.records = buffer.records();

  CacheSimulator sim(caches::small_verification());
  fft.run_traced(sim);

  const ModelSpec inferred = infer_model(trace);
  const auto* x = inferred.find("X");
  ASSERT_NE(x, nullptr);
  const double estimate = estimate_accesses(
      std::span<const PatternSpec>(x->patterns), sim.config());
  const auto id = *fft.registry().find("X");
  EXPECT_LE(math::relative_error(
                estimate, static_cast<double>(sim.stats(id).misses)),
            0.05);
}

// --- streaming infer_model(TraceReader&) -----------------------------------

std::vector<DataStructureInfo> streaming_structures() {
  return {
      {"A", 0x10000, std::uint64_t{8} * 100000, 8},
      {"B", 0x800000, std::uint64_t{16} * 100000, 16},
  };
}

std::string serialize_v2(const std::vector<DataStructureInfo>& structures,
                         const std::vector<MemoryRecord>& records) {
  std::stringstream stream;
  write_trace(stream, std::span<const DataStructureInfo>(structures),
              std::span<const MemoryRecord>(records), TraceFormat::kV2);
  return stream.str();
}

void expect_models_equal(const ModelSpec& streamed,
                         const ModelSpec& materialized) {
  ASSERT_EQ(streamed.structures.size(), materialized.structures.size());
  for (std::size_t i = 0; i < streamed.structures.size(); ++i) {
    const DataStructureSpec& a = streamed.structures[i];
    const DataStructureSpec& b = materialized.structures[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.size_bytes, b.size_bytes);
    ASSERT_EQ(a.patterns.size(), b.patterns.size()) << a.name;
    for (std::size_t p = 0; p < a.patterns.size(); ++p) {
      EXPECT_TRUE(analysis::spec_equal(a.patterns[p], b.patterns[p]))
          << a.name << " phase " << p;
    }
  }
}

TEST(InferModelStreaming, EmptyTraceMatchesMaterializedPath) {
  // Structures that were never referenced are dropped by inference (they
  // carry no access evidence); an empty trace therefore yields an empty
  // model on both paths — but the reader must still have consumed the
  // structure table cleanly.
  const auto structures = streaming_structures();
  std::stringstream stream(serialize_v2(structures, {}));
  TraceReader reader(stream);
  ASSERT_EQ(reader.structures().size(), 2u);
  EXPECT_EQ(reader.structures()[0].name, "A");
  const ModelSpec streamed = infer_model(reader);
  EXPECT_TRUE(reader.done());
  const ModelSpec materialized = infer_model(
      std::span<const DataStructureInfo>(structures),
      std::span<const MemoryRecord>({}));
  expect_models_equal(streamed, materialized);
  EXPECT_TRUE(streamed.structures.empty());
}

TEST(InferModelStreaming, ExactlyOneChunkMatchesMaterializedPath) {
  // 1000 records: far below the 65536-record writer chunk, so the streaming
  // reader sees exactly one chunk.
  const auto structures = streaming_structures();
  std::vector<MemoryRecord> records;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    records.push_back({structures[0].base_address + i * 8, 8, 0, false});
  }
  std::stringstream stream(serialize_v2(structures, records));
  TraceReader reader(stream);
  const ModelSpec streamed = infer_model(reader);
  const ModelSpec materialized = infer_model(
      std::span<const DataStructureInfo>(structures),
      std::span<const MemoryRecord>(records));
  expect_models_equal(streamed, materialized);

  const auto* a = streamed.find("A");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->patterns.size(), 1u);
  const auto* s = std::get_if<StreamingSpec>(&a->patterns.front());
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->stride_elements, 1u);
}

TEST(InferModelStreaming, ChunkBoundaryStraddlingSequencesMatchMaterialized) {
  // 70000 records across two structures. The second structure's periodic
  // reference string begins before the 65536-record chunk boundary and ends
  // after it, so its detection must survive per-chunk bucketing.
  const auto structures = streaming_structures();
  std::vector<MemoryRecord> records;
  for (std::uint64_t i = 0; i < 40000; ++i) {
    records.push_back({structures[0].base_address + i * 8, 8, 0, false});
  }
  const std::uint64_t base_string[] = {5, 1, 9, 1, 7};
  for (int rep = 0; rep < 6000; ++rep) {
    for (const std::uint64_t idx : base_string) {
      records.push_back({structures[1].base_address + idx * 16, 16, 1, true});
    }
  }
  ASSERT_EQ(records.size(), 70000u);

  std::stringstream stream(serialize_v2(structures, records));
  TraceReader reader(stream);
  const ModelSpec streamed = infer_model(reader);
  EXPECT_TRUE(reader.done());
  const ModelSpec materialized = infer_model(
      std::span<const DataStructureInfo>(structures),
      std::span<const MemoryRecord>(records));
  expect_models_equal(streamed, materialized);

  const auto* b = streamed.find("B");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->patterns.size(), 1u);
  const auto* t = std::get_if<TemplateSpec>(&b->patterns.front());
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->repetitions, 6000u);
}

}  // namespace
}  // namespace dvf
