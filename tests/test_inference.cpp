// Tests for pattern inference (trace -> model).
#include "dvf/dvf/inference.hpp"

#include <gtest/gtest.h>

#include <variant>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/kernels/fft.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/estimate.hpp"

namespace dvf {
namespace {

TEST(InferPatterns, DetectsUnitStrideStreaming) {
  std::vector<std::uint64_t> idx;
  for (std::uint64_t i = 0; i < 100; ++i) {
    idx.push_back(i);
  }
  const auto patterns = infer_patterns(idx, 8, 100);
  ASSERT_EQ(patterns.size(), 1u);
  const auto* s = std::get_if<StreamingSpec>(&patterns[0]);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->stride_elements, 1u);
  EXPECT_EQ(s->element_count, 100u);
}

TEST(InferPatterns, DetectsStridedStreamingWithMultipleSweeps) {
  std::vector<std::uint64_t> idx;
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (std::uint64_t i = 0; i < 50; ++i) {
      idx.push_back(i * 4);
    }
  }
  const auto patterns = infer_patterns(idx, 8, 200);
  ASSERT_EQ(patterns.size(), 3u);
  for (const auto& p : patterns) {
    const auto* s = std::get_if<StreamingSpec>(&p);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->stride_elements, 4u);
  }
}

TEST(InferPatterns, DetectsPeriodicTemplates) {
  const std::vector<std::uint64_t> base = {5, 1, 9, 1, 7};
  std::vector<std::uint64_t> idx;
  for (int rep = 0; rep < 6; ++rep) {
    idx.insert(idx.end(), base.begin(), base.end());
  }
  const auto patterns = infer_patterns(idx, 8, 10);
  ASSERT_EQ(patterns.size(), 1u);
  const auto* t = std::get_if<TemplateSpec>(&patterns[0]);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->element_indices, base);
  EXPECT_EQ(t->repetitions, 6u);
}

TEST(InferPatterns, IrregularStreamBecomesLiteralTemplate) {
  Xoshiro256 rng(3);
  std::vector<std::uint64_t> idx;
  for (int i = 0; i < 1000; ++i) {
    idx.push_back(rng.below(64));
  }
  const auto patterns = infer_patterns(idx, 8, 64);
  ASSERT_EQ(patterns.size(), 1u);
  const auto* t = std::get_if<TemplateSpec>(&patterns[0]);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->element_indices.size() * t->repetitions, 1000u);
}

TEST(InferPatterns, OverBudgetStreamBecomesIrmRandom) {
  Xoshiro256 rng(4);
  std::vector<std::uint64_t> idx;
  for (int i = 0; i < 2000; ++i) {
    idx.push_back(rng.below(128));
  }
  InferenceOptions options;
  options.literal_template_limit = 100;  // force the fallback
  const auto patterns = infer_patterns(idx, 8, 128, options);
  ASSERT_EQ(patterns.size(), 1u);
  const auto* r = std::get_if<RandomSpec>(&patterns[0]);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->element_count, 128u);
  EXPECT_FALSE(r->sorted_visit_fractions.empty());
}

TEST(InferPatterns, EmptyStreamYieldsNothing) {
  EXPECT_TRUE(infer_patterns({}, 8, 10).empty());
}

TEST(InferModel, RecoversVmAsStreaming) {
  kernels::KernelCaseAdapter<kernels::VectorMultiply> vm(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 500});
  TraceBuffer buffer;
  vm.run_buffered(buffer);

  TraceFile trace;
  for (const auto& info : vm.registry()) {
    trace.structures.push_back(info);
  }
  trace.records = buffer.records();

  const ModelSpec inferred = infer_model(trace);
  ASSERT_EQ(inferred.structures.size(), 3u);
  const auto* a = inferred.find("A");
  ASSERT_NE(a, nullptr);
  const auto* s = std::get_if<StreamingSpec>(&a->patterns.front());
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->stride_elements, 4u);
}

TEST(InferModel, InferredFftModelPredictsSimulatedMissesExactly) {
  // The literal-template path makes the inferred model's stack-distance
  // count near-exact for a fully-associative-friendly stream.
  kernels::KernelCaseAdapter<kernels::Fft1D> fft(
      "FT", "spectral", kernels::Fft1D::Config{.n = 512});
  TraceBuffer buffer;
  fft.run_buffered(buffer);
  TraceFile trace;
  for (const auto& info : fft.registry()) {
    trace.structures.push_back(info);
  }
  trace.records = buffer.records();

  CacheSimulator sim(caches::small_verification());
  fft.run_traced(sim);

  const ModelSpec inferred = infer_model(trace);
  const auto* x = inferred.find("X");
  ASSERT_NE(x, nullptr);
  const double estimate = estimate_accesses(
      std::span<const PatternSpec>(x->patterns), sim.config());
  const auto id = *fft.registry().find("X");
  EXPECT_LE(math::relative_error(
                estimate, static_cast<double>(sim.stats(id).misses)),
            0.05);
}

}  // namespace
}  // namespace dvf
