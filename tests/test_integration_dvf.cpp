// Integration: end-to-end DVF studies — the Fig. 5/6/7 observations as
// assertions (at reduced sizes so the suite stays fast), and the DSL
// pipeline feeding the calculator.
#include <gtest/gtest.h>

#include <fstream>

#include "dvf/dsl/analyzer.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/dvf/ecc.hpp"
#include "dvf/kernels/cg.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/machine/cache_config.hpp"

namespace dvf {
namespace {

TEST(DvfProfiles, VmLargerStrideDominates) {
  // Fig. 5(a): A's DVF clearly exceeds B's and C's on every profiling cache.
  kernels::VectorMultiply vm({.iterations = 10000});
  ModelSpec spec = vm.model_spec();
  spec.exec_time_seconds = 1.0;
  for (const auto& cache : caches::all_profiling()) {
    const ApplicationDvf app =
        DvfCalculator(Machine::with_cache(cache)).for_model(spec);
    const double a = app.find("A")->dvf;
    EXPECT_GT(a, 2.0 * app.find("B")->dvf) << cache.name();
    EXPECT_GT(a, 2.0 * app.find("C")->dvf) << cache.name();
  }
}

TEST(DvfProfiles, DvfDecreasesWithLargerCaches) {
  // More cache -> fewer main-memory accesses -> lower DVF (same T).
  kernels::VectorMultiply vm({.iterations = 10000});
  ModelSpec spec = vm.model_spec();
  spec.exec_time_seconds = 1.0;
  double prev = 1e300;
  for (const auto& cache : caches::all_profiling()) {
    const double total =
        DvfCalculator(Machine::with_cache(cache)).for_model(spec).total;
    EXPECT_LE(total, prev * (1.0 + 1e-9)) << cache.name();
    prev = total;
  }
}

TEST(DvfProfiles, FtJumpsWhenCacheBelowWorkingSet) {
  // Fig. 5(e): the FT working set (~32 KiB) fits every profiling cache
  // except the 16 KiB one, where DVF jumps by an order of magnitude.
  auto suite = kernels::make_profiling_suite();
  for (auto& kernel : suite) {
    if (kernel->name() != "FT") {
      continue;
    }
    ModelSpec spec = kernel->model_spec();
    spec.exec_time_seconds = 1.0;
    const double small = DvfCalculator(Machine::with_cache(
                             caches::profiling_16kb())).for_model(spec).total;
    const double large = DvfCalculator(Machine::with_cache(
                             caches::profiling_128kb())).for_model(spec).total;
    EXPECT_GT(small, 5.0 * large);
  }
}

TEST(DvfStudies, CgPcgCrossover) {
  // Fig. 6: PCG more vulnerable at small n, less at large n. Use the model
  // with analytic times proportional to iterations * matvecs to keep the
  // test timing-noise free.
  const DvfCalculator calc(Machine::with_cache(caches::profiling_8mb()));
  const auto dvf_for = [&](std::uint64_t n, bool pre) {
    kernels::ConjugateGradient solver({.n = n, .preconditioned = pre});
    NullRecorder null;
    solver.run(null);
    ModelSpec spec = solver.model_spec();
    // Deterministic time proxy: matvecs per iteration * n^2.
    const double matvecs = pre ? 2.0 : 1.0;
    spec.exec_time_seconds = 1e-9 * matvecs *
                             static_cast<double>(solver.iterations_run()) *
                             static_cast<double>(n) * static_cast<double>(n);
    return calc.for_model(spec).total;
  };
  EXPECT_GT(dvf_for(100, true), dvf_for(100, false));
  EXPECT_LT(dvf_for(600, true), dvf_for(600, false));
}

TEST(DvfStudies, EccSweepShapeOnRealKernel) {
  // Fig. 7 end to end on the VM kernel.
  kernels::VectorMultiply vm({.iterations = 10000});
  ModelSpec spec = vm.model_spec();
  spec.exec_time_seconds = 0.001;
  const EccTradeoffExplorer explorer(
      Machine::with_cache(caches::profiling_8mb()), spec);
  EccSweepConfig config;
  const auto points = explorer.sweep(config);
  EXPECT_NEAR(EccTradeoffExplorer::optimal_degradation(points), 0.05, 1e-9);
  EXPECT_LT(points.back().dvf, points.front().dvf);  // ECC helps overall
}

TEST(DslToCalculator, EndToEnd) {
  const dsl::CompiledProgram program = dsl::compile(R"(
    param n = 1000;
    machine "m" {
      cache { associativity 4; sets 64; line 32; }
      memory { fit 5000; }
    }
    model "vm" {
      time 0.01;
      data A { elements n; element_size 8; }
      pattern A stream { stride 1; }
    })");
  const ApplicationDvf app =
      DvfCalculator(program.machine("m")).for_model(program.model("vm"));
  ASSERT_EQ(app.structures.size(), 1u);
  EXPECT_DOUBLE_EQ(app.structures[0].n_ha, 250.0);  // 8000 B / 32 B
  EXPECT_GT(app.total, 0.0);
}

TEST(DslToCalculator, BundledModelFilesCompile) {
  // The repository's example .aspen programs must stay valid.
  for (const char* path : {"models/vm.aspen", "models/nbody.aspen",
                           "models/mg.aspen", "models/cg.aspen"}) {
    // ctest runs from the build tree; walk up until the file appears.
    std::string full = path;
    for (int up = 0; up < 4 && !std::ifstream(full).good(); ++up) {
      full = "../" + full;
    }
    if (!std::ifstream(full).good()) {
      GTEST_SKIP() << "model files not found relative to cwd";
    }
    EXPECT_NO_THROW({
      const auto program = dsl::compile_file(full);
      EXPECT_FALSE(program.models.empty()) << path;
      for (const auto& model : program.models) {
        for (const auto& machine : program.machines) {
          (void)DvfCalculator(machine).for_model(model);
        }
      }
    }) << path;
  }
}

}  // namespace
}  // namespace dvf
