// Integration: the Fig. 4 experiment as assertions — CGPMAC estimates vs
// the trace-driven LRU simulator over all six kernels and both verification
// caches (Table IV/V).
//
// Accuracy bands: the paper claims <= 15%. Our reproduction meets that for
// every structure except CG's p and r on the 8 KiB cache, whose misses are
// dominated by intra-matvec conflict evictions that the paper's
// reuse-pattern abstraction cannot represent (see EXPERIMENTS.md); those
// two carry a documented looser band.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/math.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/estimate.hpp"

namespace dvf {
namespace {

struct Case {
  std::string cache;
  std::string kernel;
  std::string structure;
  double band;  // maximum tolerated relative error vs simulated misses
};

class VerificationExperiment : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    results_ = new std::map<std::string, double>();
    for (const auto& cache : {caches::small_verification(),
                              caches::large_verification()}) {
      auto suite = kernels::make_verification_suite();
      for (auto& kernel : suite) {
        CacheSimulator sim(cache);
        kernel->run_traced(sim);
        const ModelSpec spec = kernel->model_spec();
        for (const auto& ds : spec.structures) {
          const auto id = kernel->registry().find(ds.name);
          ASSERT_TRUE(id.has_value());
          const double estimate = estimate_accesses(
              std::span<const PatternSpec>(ds.patterns), cache);
          const double err = math::relative_error(
              estimate, static_cast<double>(sim.stats(*id).misses));
          (*results_)[cache.name() + "/" + kernel->name() + "/" + ds.name] =
              err;
        }
      }
    }
  }
  static void TearDownTestSuite() {
    delete results_;
    results_ = nullptr;
  }

  static double error_for(const std::string& key) {
    const auto it = results_->find(key);
    EXPECT_NE(it, results_->end()) << key;
    return it == results_->end() ? 1e9 : it->second;
  }

  static std::map<std::string, double>* results_;
};

std::map<std::string, double>* VerificationExperiment::results_ = nullptr;

TEST_F(VerificationExperiment, StreamingStructuresAreExact) {
  for (const char* cache : {"small-verification", "large-verification"}) {
    for (const char* ds : {"VM/A", "VM/B", "VM/C"}) {
      EXPECT_LE(error_for(std::string(cache) + "/" + ds), 0.01)
          << cache << "/" << ds;
    }
  }
}

TEST_F(VerificationExperiment, CgMatrixWithinPaperBand) {
  EXPECT_LE(error_for("small-verification/CG/A"), 0.15);
  EXPECT_LE(error_for("large-verification/CG/A"), 0.15);
  EXPECT_LE(error_for("small-verification/CG/x"), 0.15);
  EXPECT_LE(error_for("large-verification/CG/x"), 0.15);
}

TEST_F(VerificationExperiment, CgConflictDominatedVectorsWithinLooseBand) {
  // Documented deviation: intra-matvec conflict misses (EXPERIMENTS.md).
  EXPECT_LE(error_for("small-verification/CG/p"), 0.60);
  EXPECT_LE(error_for("small-verification/CG/r"), 0.60);
  EXPECT_LE(error_for("large-verification/CG/p"), 0.15);
  EXPECT_LE(error_for("large-verification/CG/r"), 0.15);
}

TEST_F(VerificationExperiment, RandomAccessKernelsWithinPaperBand) {
  for (const char* key : {"NB/T", "NB/P", "MC/G", "MC/E"}) {
    EXPECT_LE(error_for(std::string("small-verification/") + key), 0.15)
        << key;
    EXPECT_LE(error_for(std::string("large-verification/") + key), 0.15)
        << key;
  }
}

TEST_F(VerificationExperiment, TemplateKernelsWithinPaperBand) {
  for (const char* key : {"MG/R", "FT/X"}) {
    EXPECT_LE(error_for(std::string("small-verification/") + key), 0.15)
        << key;
    EXPECT_LE(error_for(std::string("large-verification/") + key), 0.15)
        << key;
  }
}

}  // namespace
}  // namespace dvf
