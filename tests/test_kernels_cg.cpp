// Tests for the CG/PCG kernel: it must genuinely solve the system, and its
// self-description must follow Algorithm 4/5.
#include "dvf/kernels/cg.hpp"

#include <gtest/gtest.h>

#include <variant>

#include "dvf/common/error.hpp"

namespace dvf::kernels {
namespace {

TEST(CgKernel, SolvesTheSystem) {
  ConjugateGradient::Config config;
  config.n = 64;
  ConjugateGradient cg(config);
  NullRecorder null;
  cg.run(null);
  EXPECT_LT(cg.relative_residual(), config.tolerance);
  EXPECT_LT(cg.solution_error(), 1e-3);
  EXPECT_GT(cg.iterations_run(), 0u);
  EXPECT_LE(cg.iterations_run(), config.n);
}

TEST(CgKernel, PreconditioningSolvesToo) {
  ConjugateGradient::Config config;
  config.n = 64;
  config.preconditioned = true;
  ConjugateGradient pcg(config);
  NullRecorder null;
  pcg.run(null);
  EXPECT_LT(pcg.relative_residual(), config.tolerance);
  EXPECT_LT(pcg.solution_error(), 1e-3);
}

TEST(CgKernel, PreconditioningNeverNeedsMoreIterationsAtLargeN) {
  ConjugateGradient::Config config;
  config.n = 400;  // condition number ~ (400/160)^3
  ConjugateGradient cg(config);
  config.preconditioned = true;
  ConjugateGradient pcg(config);
  NullRecorder null;
  cg.run(null);
  pcg.run(null);
  EXPECT_LT(pcg.iterations_run(), cg.iterations_run());
}

TEST(CgKernel, RunsAreDeterministicAndRepeatable) {
  ConjugateGradient cg({.n = 48});
  NullRecorder null;
  cg.run(null);
  const std::uint64_t first = cg.iterations_run();
  const double residual = cg.relative_residual();
  cg.run(null);
  EXPECT_EQ(cg.iterations_run(), first);
  EXPECT_DOUBLE_EQ(cg.relative_residual(), residual);
}

TEST(CgKernel, IterationCapIsHonored) {
  ConjugateGradient::Config config;
  config.n = 200;
  config.max_iterations = 5;
  ConjugateGradient cg(config);
  NullRecorder null;
  cg.run(null);
  EXPECT_EQ(cg.iterations_run(), 5u);
}

TEST(CgKernel, ReferenceCountsScaleWithTheMatvec) {
  ConjugateGradient::Config config;
  config.n = 32;
  config.max_iterations = 3;
  ConjugateGradient cg(config);
  CountingRecorder counts;
  cg.run(counts);
  const auto a = *cg.registry().find("A");
  // One n^2 matvec per iteration, loads only.
  EXPECT_EQ(counts.counts(a).loads, 3u * 32u * 32u);
  EXPECT_EQ(counts.counts(a).stores, 0u);
  const auto p = *cg.registry().find("p");
  // p: n loads per matvec row + p.Ap + axpy + update, plus init stores.
  EXPECT_GT(counts.counts(p).loads, 3u * 32u * 32u);
  EXPECT_GT(counts.counts(p).stores, 0u);
}

TEST(CgKernel, ModelSpecListsThePaperStructures) {
  ConjugateGradient cg({.n = 32, .max_iterations = 4});
  NullRecorder null;
  cg.run(null);
  const ModelSpec spec = cg.model_spec();
  EXPECT_EQ(spec.name, "CG");
  ASSERT_EQ(spec.structures.size(), 4u);  // A, x, p, r
  EXPECT_NE(spec.find("A"), nullptr);
  EXPECT_NE(spec.find("x"), nullptr);
  EXPECT_NE(spec.find("p"), nullptr);
  EXPECT_NE(spec.find("r"), nullptr);
  EXPECT_TRUE(std::holds_alternative<ReuseSpec>(spec.find("p")->patterns[0]));
}

TEST(CgKernel, PcgModelAddsAuxiliaryStructures) {
  ConjugateGradient pcg({.n = 32, .max_iterations = 4, .preconditioned = true});
  const ModelSpec spec = pcg.model_spec();
  EXPECT_EQ(spec.name, "PCG");
  EXPECT_NE(spec.find("M"), nullptr);
  EXPECT_NE(spec.find("z"), nullptr);
  EXPECT_GT(spec.working_set_bytes(),
            ConjugateGradient({.n = 32}).model_spec().working_set_bytes());
}

TEST(CgKernel, RejectsTinySystems) {
  EXPECT_THROW(ConjugateGradient({.n = 1}), InvalidArgumentError);
}

}  // namespace
}  // namespace dvf::kernels
