// Tests for the FFT kernel: transform correctness (known spectra, Parseval),
// template fidelity against the traced reference order.
#include "dvf/kernels/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <variant>

#include "dvf/common/error.hpp"

namespace dvf::kernels {
namespace {

TEST(FftKernel, TransformOfPureToneConcentratesEnergy) {
  // The constructor's signal is sin(2*pi*5 t) plus small noise: bins 5 and
  // n-5 must dominate the spectrum.
  Fft1D fft({.n = 256});
  NullRecorder null;
  fft.run(null);
  double tone = 0.0;
  double rest = 0.0;
  for (std::size_t k = 0; k < 256; ++k) {
    const double mag = fft.bin(k).re * fft.bin(k).re +
                       fft.bin(k).im * fft.bin(k).im;
    if (k == 5 || k == 251) {
      tone += mag;
    } else {
      rest += mag;
    }
  }
  EXPECT_GT(tone, 10.0 * rest);
}

TEST(FftKernel, ParsevalHolds) {
  Fft1D fft({.n = 512});
  double time_energy = 0.0;
  for (std::size_t i = 0; i < 512; ++i) {
    time_energy += fft.bin(i).re * fft.bin(i).re +
                   fft.bin(i).im * fft.bin(i).im;
  }
  NullRecorder null;
  fft.run(null);
  EXPECT_NEAR(fft.spectrum_energy(), 512.0 * time_energy,
              1e-6 * fft.spectrum_energy());
}

TEST(FftKernel, ResetRestoresTheSignal) {
  Fft1D fft({.n = 64});
  const double before = fft.bin(3).re;
  NullRecorder null;
  fft.run(null);
  fft.reset();
  EXPECT_DOUBLE_EQ(fft.bin(3).re, before);
}

TEST(FftKernel, ReferenceCountsMatchButterflyArithmetic) {
  const std::uint64_t n = 128;
  Fft1D fft({.n = n});
  CountingRecorder counts;
  fft.run(counts);
  const auto id = *fft.registry().find("X");
  // Butterflies: log2(n) stages of n/2 butterflies, 2 loads + 2 stores each;
  // plus 4 references per bit-reversal swap.
  const std::uint64_t butterflies = 7 * (n / 2);
  EXPECT_GE(counts.counts(id).loads, 2 * butterflies);
  EXPECT_GE(counts.counts(id).stores, 2 * butterflies);
  EXPECT_EQ(counts.counts(id).loads, counts.counts(id).stores);
}

TEST(FftKernel, TemplateMatchesTracedElementOrder) {
  Fft1D fft({.n = 64});
  TraceBuffer trace;
  fft.run(trace);
  const auto id = *fft.registry().find("X");
  const auto& info = fft.registry().info(id);
  const auto tmpl = fft.transform_template();

  // The traced loads follow the template's element order exactly (each
  // template entry corresponds to a load+store pair or swap reference).
  std::size_t t = 0;
  for (const MemoryRecord& record : trace.records()) {
    if (record.ds != id || record.is_write) {
      continue;
    }
    const std::uint64_t element =
        (record.address - info.base_address) / sizeof(Fft1D::Complex);
    ASSERT_LT(t, tmpl.size());
    ASSERT_EQ(element, tmpl[t]) << "load #" << t;
    ++t;
  }
  EXPECT_EQ(t, tmpl.size());
}

TEST(FftKernel, ModelSpecIsATemplateOnX) {
  Fft1D fft({.n = 2048, .transforms = 3});
  const ModelSpec spec = fft.model_spec();
  EXPECT_EQ(spec.name, "FT");
  ASSERT_EQ(spec.structures.size(), 1u);
  EXPECT_EQ(spec.structures[0].size_bytes, 2048u * 16u);
  const auto* tmpl = std::get_if<TemplateSpec>(&spec.structures[0].patterns[0]);
  ASSERT_NE(tmpl, nullptr);
  EXPECT_EQ(tmpl->repetitions, 3u);
  EXPECT_EQ(tmpl->element_bytes, 16u);
}

TEST(FftKernel, RejectsNonPowerOfTwoLengths) {
  EXPECT_THROW(Fft1D({.n = 100}), InvalidArgumentError);
  EXPECT_THROW(Fft1D({.n = 2}), InvalidArgumentError);
  EXPECT_THROW(Fft1D({.n = 64, .transforms = 0}), InvalidArgumentError);
}

}  // namespace
}  // namespace dvf::kernels
