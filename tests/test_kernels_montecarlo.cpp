// Tests for the Monte Carlo lookup kernel: bisection correctness, profiling
// counters, cache-share split, self-description.
#include "dvf/kernels/montecarlo.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <variant>

#include "dvf/common/error.hpp"

namespace dvf::kernels {
namespace {

TEST(McKernel, LookupsAccumulateCrossSections) {
  MonteCarlo mc({.grid_points = 1000, .xs_entries = 100, .lookups = 500});
  NullRecorder null;
  mc.run(null);
  EXPECT_GT(mc.accumulated_xs(), 0.0);
  // Each term is bounded by 4 (xs values are in [0,1) with weights <= 1).
  EXPECT_LT(mc.accumulated_xs(), 4.0 * 500);
}

TEST(McKernel, Deterministic) {
  MonteCarlo a({.grid_points = 1000, .xs_entries = 100, .lookups = 200});
  MonteCarlo b({.grid_points = 1000, .xs_entries = 100, .lookups = 200});
  NullRecorder null;
  a.run(null);
  b.run(null);
  EXPECT_DOUBLE_EQ(a.accumulated_xs(), b.accumulated_xs());
}

TEST(McKernel, BisectionTouchesLogarithmicGridElements) {
  MonteCarlo mc({.grid_points = 4096, .xs_entries = 64, .lookups = 1000});
  NullRecorder null;
  mc.run(null);
  // Bisecting 4096 sorted entries takes ~11 probes.
  EXPECT_NEAR(mc.average_grid_visits(), std::log2(4096.0), 2.0);
  EXPECT_DOUBLE_EQ(mc.average_xs_visits(), 1.0);
}

TEST(McKernel, ReferenceCountsIncludeConstructionTraversal) {
  MonteCarlo mc({.grid_points = 1000, .xs_entries = 100, .lookups = 50});
  CountingRecorder counts;
  mc.run(counts);
  const auto g = *mc.registry().find("G");
  const auto e = *mc.registry().find("E");
  EXPECT_GE(counts.counts(g).loads, 1000u);  // construction pass at least
  EXPECT_EQ(counts.counts(e).loads, 100u + 50u);
  EXPECT_EQ(counts.counts(g).stores, 0u);
}

TEST(McKernel, ModelSplitsTheCacheByFootprint) {
  MonteCarlo mc({.grid_points = 2000, .xs_entries = 500, .lookups = 100});
  ModelSpec spec = mc.model_spec();
  EXPECT_EQ(spec.name, "MC");
  ASSERT_EQ(spec.structures.size(), 2u);
  const auto* g = std::get_if<RandomSpec>(&spec.find("G")->patterns[0]);
  const auto* e = std::get_if<RandomSpec>(&spec.find("E")->patterns[0]);
  ASSERT_NE(g, nullptr);
  ASSERT_NE(e, nullptr);
  // r_G = S_G / (S_G + S_E), and the two shares partition the cache.
  const double sg = 2000.0 * 16.0;
  const double se = 500.0 * 32.0;
  EXPECT_DOUBLE_EQ(g->cache_ratio, sg / (sg + se));
  EXPECT_DOUBLE_EQ(e->cache_ratio, se / (sg + se));
  EXPECT_NEAR(g->cache_ratio + e->cache_ratio, 1.0, 1e-12);
}

TEST(McKernel, HistogramsReflectBisectionPopularity) {
  MonteCarlo mc({.grid_points = 4096, .xs_entries = 64, .lookups = 2000});
  ModelSpec spec = mc.model_spec();
  const auto* g = std::get_if<RandomSpec>(&spec.find("G")->patterns[0]);
  ASSERT_NE(g, nullptr);
  ASSERT_EQ(g->sorted_visit_fractions.size(), 4096u);
  // The root of the implicit bisection tree is touched every lookup (plus
  // the odd hit as a final bracket, so it can slightly exceed 1).
  EXPECT_GE(g->sorted_visit_fractions[0], 0.99);
  EXPECT_LE(g->sorted_visit_fractions[0], 1.01);
  // Popularity halves level by level: the 15th-ranked entry is much colder.
  EXPECT_LT(g->sorted_visit_fractions[15], 0.6);
}

TEST(McKernel, RejectsDegenerateConfigs) {
  EXPECT_THROW(MonteCarlo({.grid_points = 2}), InvalidArgumentError);
  EXPECT_THROW(MonteCarlo({.grid_points = 10, .xs_entries = 0}),
               InvalidArgumentError);
  EXPECT_THROW(
      MonteCarlo({.grid_points = 10, .xs_entries = 5, .lookups = 0}),
      InvalidArgumentError);
}

}  // namespace
}  // namespace dvf::kernels
