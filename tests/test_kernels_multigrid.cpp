// Tests for the multigrid kernel: the V-cycle must reduce the residual, and
// the smoother template must mirror the actual reference order.
#include "dvf/kernels/multigrid.hpp"

#include <gtest/gtest.h>

#include <set>
#include <variant>

#include "dvf/common/error.hpp"

namespace dvf::kernels {
namespace {

TEST(MultigridKernel, VcyclesReduceTheResidual) {
  MultiGrid one({.dim = 16, .levels = 2, .vcycles = 1});
  MultiGrid many({.dim = 16, .levels = 2, .vcycles = 8});
  NullRecorder null;
  one.run(null);
  many.run(null);
  EXPECT_GT(one.residual_norm(), 0.0);
  EXPECT_LT(many.residual_norm(), one.residual_norm());
}

TEST(MultigridKernel, Deterministic) {
  MultiGrid a({.dim = 16, .levels = 2, .vcycles = 2, .seed = 4});
  MultiGrid b({.dim = 16, .levels = 2, .vcycles = 2, .seed = 4});
  NullRecorder null;
  a.run(null);
  b.run(null);
  EXPECT_DOUBLE_EQ(a.residual_norm(), b.residual_norm());
}

TEST(MultigridKernel, SmootherTemplateHasFiveRefsPerInteriorPoint) {
  MultiGrid mg({.dim = 8, .levels = 1, .vcycles = 1});
  const auto tmpl = mg.smoother_template();
  EXPECT_EQ(tmpl.size(), 5u * 6 * 6 * 8);  // (n-2)^2 * n interior columns
}

TEST(MultigridKernel, TemplateMatchesTheTracedSmootherOrder) {
  // Record one pre-smooth pass worth of R references and compare the prefix
  // against the template expansion.
  MultiGrid mg({.dim = 8, .levels = 1, .vcycles = 1});
  TraceBuffer trace;
  mg.run(trace);
  const auto rid = *mg.registry().find("R");
  const auto tmpl = mg.smoother_template();

  std::size_t seen = 0;
  const auto& info = mg.registry().info(rid);
  for (const MemoryRecord& record : trace.records()) {
    if (record.ds != rid || record.is_write) {
      continue;  // the template describes the read references
    }
    const std::uint64_t element =
        (record.address - info.base_address) / sizeof(double);
    ASSERT_LT(seen, tmpl.size());
    ASSERT_EQ(element, tmpl[seen]) << "reference #" << seen;
    if (++seen == tmpl.size()) {
      break;  // one full smoother sweep verified
    }
  }
  EXPECT_EQ(seen, tmpl.size());
}

TEST(MultigridKernel, ModelSpecIsATemplateOnR) {
  MultiGrid mg({.dim = 16, .levels = 2, .vcycles = 3});
  const ModelSpec spec = mg.model_spec();
  EXPECT_EQ(spec.name, "MG");
  ASSERT_EQ(spec.structures.size(), 1u);
  const auto* tmpl = std::get_if<TemplateSpec>(&spec.structures[0].patterns[0]);
  ASSERT_NE(tmpl, nullptr);
  EXPECT_EQ(tmpl->repetitions, 3u * 4u);  // (pre+post+2) * vcycles
  EXPECT_GT(tmpl->element_indices.size(), 0u);
}

TEST(MultigridKernel, PaddedIndexingNeverAliasesRows) {
  // at() with the +1 pad must give distinct indices for distinct (i,j,k).
  const std::uint64_t n = 8;
  std::set<std::size_t> seen;
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      for (std::uint64_t k = 0; k < n; ++k) {
        EXPECT_TRUE(seen.insert(MultiGrid::at(n, i, j, k)).second);
      }
    }
  }
  EXPECT_LT(*seen.rbegin(), MultiGrid::cells(n));
}

TEST(MultigridKernel, RejectsDegenerateConfigs) {
  EXPECT_THROW(MultiGrid({.dim = 12}), InvalidArgumentError);  // not 2^k
  EXPECT_THROW(MultiGrid({.dim = 8, .levels = 3}), InvalidArgumentError);
  EXPECT_THROW(MultiGrid({.dim = 16, .levels = 2, .vcycles = 0}),
               InvalidArgumentError);
}

}  // namespace
}  // namespace dvf::kernels
