// Tests for the Barnes–Hut kernel: tree invariants, force physics sanity,
// profiling counters, self-description.
#include "dvf/kernels/nbody.hpp"

#include <gtest/gtest.h>

#include <variant>

#include "dvf/common/error.hpp"

namespace dvf::kernels {
namespace {

TEST(NbodyKernel, BuildsATreeAndComputesForces) {
  BarnesHut nb({.bodies = 200});
  NullRecorder null;
  nb.run(null);
  EXPECT_GE(nb.node_count(), 200u);      // at least one node per body
  EXPECT_LE(nb.node_count(), 200u * 8);  // pool bound
  EXPECT_GT(nb.total_force(), 0.0);
  EXPECT_GT(nb.average_visits(), 1.0);
  EXPECT_LT(nb.average_visits(), static_cast<double>(nb.node_count()));
}

TEST(NbodyKernel, Deterministic) {
  BarnesHut a({.bodies = 300, .seed = 9});
  BarnesHut b({.bodies = 300, .seed = 9});
  NullRecorder null;
  a.run(null);
  b.run(null);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_DOUBLE_EQ(a.total_force(), b.total_force());
  EXPECT_DOUBLE_EQ(a.average_visits(), b.average_visits());
}

TEST(NbodyKernel, SmallerThetaVisitsMoreNodes) {
  BarnesHut coarse({.bodies = 500, .theta = 1.0});
  BarnesHut fine({.bodies = 500, .theta = 0.2});
  NullRecorder null;
  coarse.run(null);
  fine.run(null);
  EXPECT_GT(fine.average_visits(), coarse.average_visits());
}

TEST(NbodyKernel, ForceIsSymmetricForTwoBodiesPair) {
  // With theta small every interaction is exact pairwise; a two-body system
  // must see equal and opposite forces.
  BarnesHut nb({.bodies = 2, .theta = 0.01});
  NullRecorder null;
  nb.run(null);
  EXPECT_GT(nb.total_force(), 0.0);
}

TEST(NbodyKernel, ProfiledVisitsMatchTraceCounts) {
  BarnesHut nb({.bodies = 400});
  CountingRecorder counts;
  nb.run(counts);
  const auto tree = *nb.registry().find("T");
  // Tree loads = insert-phase loads + force-phase visits; the profiled
  // average covers only the force pass, so loads must exceed it.
  EXPECT_GT(counts.counts(tree).loads,
            static_cast<std::uint64_t>(nb.average_visits() * 400));
}

TEST(NbodyKernel, ModelSpecCarriesProfiledParameters) {
  BarnesHut nb({.bodies = 300});
  const ModelSpec spec = nb.model_spec();  // profiles on demand
  EXPECT_EQ(spec.name, "NB");
  ASSERT_EQ(spec.structures.size(), 2u);
  const auto* tree = spec.find("T");
  ASSERT_NE(tree, nullptr);
  const auto* random = std::get_if<RandomSpec>(&tree->patterns[0]);
  ASSERT_NE(random, nullptr);
  EXPECT_EQ(random->iterations, 300u);
  EXPECT_GT(random->visits_per_iteration, 1.0);
  ASSERT_EQ(random->sorted_visit_fractions.size(), random->element_count);
  // Histogram sorted descending, with the root visited every iteration.
  EXPECT_DOUBLE_EQ(random->sorted_visit_fractions.front(), 1.0);
  for (std::size_t i = 1; i < random->sorted_visit_fractions.size(); ++i) {
    ASSERT_LE(random->sorted_visit_fractions[i],
              random->sorted_visit_fractions[i - 1]);
  }
}

TEST(NbodyKernel, MultiStepRunsScaleIterations) {
  BarnesHut nb({.bodies = 100, .steps = 3});
  const ModelSpec spec = nb.model_spec();
  const auto* random = std::get_if<RandomSpec>(&spec.find("T")->patterns[0]);
  ASSERT_NE(random, nullptr);
  EXPECT_EQ(random->iterations, 300u);
}

TEST(NbodyKernel, RejectsDegenerateConfigs) {
  EXPECT_THROW(BarnesHut({.bodies = 1}), InvalidArgumentError);
  EXPECT_THROW(BarnesHut({.bodies = 10, .theta = 0.0}), InvalidArgumentError);
  EXPECT_THROW(BarnesHut({.bodies = 10, .steps = 0}), InvalidArgumentError);
}

}  // namespace
}  // namespace dvf::kernels
