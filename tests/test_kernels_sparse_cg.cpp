// Tests for the sparse (CSR) CG kernel and its gather model.
#include "dvf/kernels/sparse_cg.hpp"

#include <gtest/gtest.h>

#include <variant>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/estimate.hpp"

namespace dvf::kernels {
namespace {

TEST(SparseCg, SolvesTheSystem) {
  SparseConjugateGradient cg({.n = 500});
  NullRecorder null;
  cg.run(null);
  EXPECT_LT(cg.relative_residual(), 1e-10);
  EXPECT_LT(cg.solution_error(), 1e-3);
  EXPECT_GT(cg.iterations_run(), 0u);
}

TEST(SparseCg, CsrInvariantsHold) {
  SparseConjugateGradient cg({.n = 200, .offdiag_per_row = 6});
  // At least the diagonal per row; at most diag + both mirror entries of
  // the (offdiag/2 + 1) insertions per row.
  EXPECT_GE(cg.nonzeros(), 200u);
  EXPECT_LE(cg.nonzeros(), 200u + 2u * 200u * (6 / 2 + 1));
}

TEST(SparseCg, Deterministic) {
  SparseConjugateGradient a({.n = 300, .seed = 5});
  SparseConjugateGradient b({.n = 300, .seed = 5});
  NullRecorder null;
  a.run(null);
  b.run(null);
  EXPECT_EQ(a.iterations_run(), b.iterations_run());
  EXPECT_DOUBLE_EQ(a.solution_error(), b.solution_error());
}

TEST(SparseCg, ModelSpecCoversCsrAndGather) {
  SparseConjugateGradient cg({.n = 400, .max_iterations = 10});
  NullRecorder null;
  cg.run(null);
  const ModelSpec spec = cg.model_spec();
  EXPECT_EQ(spec.name, "CGS");
  for (const char* name : {"val", "col", "row", "p", "x", "r"}) {
    EXPECT_NE(spec.find(name), nullptr) << name;
  }
  const auto* gather = std::get_if<RandomSpec>(&spec.find("p")->patterns[0]);
  ASSERT_NE(gather, nullptr);
  EXPECT_EQ(gather->sorted_visit_fractions.size(), 400u);
  // Hub columns (low indices, quadratic skew) must top the histogram.
  EXPECT_GT(gather->sorted_visit_fractions.front(),
            10.0 * gather->sorted_visit_fractions.back());
}

TEST(SparseCg, GatherModelTracksSimulatorWithinBand) {
  // The CSR arrays stream; p is gathered. Compare the model's p estimate
  // against the simulator on the small verification cache.
  SparseConjugateGradient cg({.n = 2000, .offdiag_per_row = 8,
                              .max_iterations = 8});
  CacheSimulator sim(caches::small_verification());
  cg.reset();
  cg.run(sim);
  sim.flush();
  const ModelSpec spec = cg.model_spec();

  const auto* p = spec.find("p");
  ASSERT_NE(p, nullptr);
  const double estimate = estimate_accesses(
      std::span<const PatternSpec>(p->patterns), sim.config());
  const auto id = *cg.registry().find("p");
  const double simulated = static_cast<double>(sim.stats(id).misses);
  EXPECT_LE(math::relative_error(estimate, simulated), 0.40)
      << "estimate " << estimate << " simulated " << simulated;
}

TEST(SparseCg, StreamingCsrStructuresMatchSimulatorTightly) {
  SparseConjugateGradient cg({.n = 2000, .offdiag_per_row = 8,
                              .max_iterations = 8});
  CacheSimulator sim(caches::small_verification());
  cg.reset();
  cg.run(sim);
  sim.flush();
  const ModelSpec spec = cg.model_spec();
  for (const char* name : {"val", "col"}) {
    const auto* ds = spec.find(name);
    ASSERT_NE(ds, nullptr);
    const double estimate = estimate_accesses(
        std::span<const PatternSpec>(ds->patterns), sim.config());
    const auto id = *cg.registry().find(name);
    EXPECT_LE(math::relative_error(
                  estimate, static_cast<double>(sim.stats(id).misses)),
              0.15)
        << name;
  }
}

TEST(SparseCg, RejectsDegenerateConfigs) {
  EXPECT_THROW(SparseConjugateGradient({.n = 2}), InvalidArgumentError);
  EXPECT_THROW(SparseConjugateGradient({.n = 10, .offdiag_per_row = 0}),
               InvalidArgumentError);
}

}  // namespace
}  // namespace dvf::kernels
