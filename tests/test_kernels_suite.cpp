// Tests for the kernel-suite abstraction: Table II metadata, adapter
// behaviour, repeatability across the type-erased interface.
#include "dvf/kernels/suite.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dvf/cachesim/hierarchy.hpp"
#include "dvf/machine/cache_config.hpp"

namespace dvf::kernels {
namespace {

TEST(Suite, VerificationSuiteCoversTableII) {
  const auto suite = make_verification_suite();
  ASSERT_EQ(suite.size(), 6u);
  std::set<std::string> names;
  std::set<std::string> methods;
  for (const auto& kernel : suite) {
    names.insert(kernel->name());
    methods.insert(kernel->method_class());
  }
  EXPECT_EQ(names, (std::set<std::string>{"VM", "CG", "NB", "MG", "FT", "MC"}));
  EXPECT_EQ(methods.size(), 6u);  // six distinct computational-method classes
}

TEST(Suite, ProfilingSuiteUsesLargerInputs) {
  auto verification = make_verification_suite();
  auto profiling = make_profiling_suite();
  for (std::size_t i = 0; i < verification.size(); ++i) {
    ASSERT_EQ(verification[i]->name(), profiling[i]->name());
    const auto ws_small = verification[i]->model_spec().working_set_bytes();
    const auto ws_big = profiling[i]->model_spec().working_set_bytes();
    EXPECT_GE(ws_big, ws_small) << verification[i]->name();
  }
}

TEST(Suite, EveryModeledStructureIsRegistered) {
  auto suite = make_verification_suite();
  for (auto& kernel : suite) {
    const ModelSpec spec = kernel->model_spec();
    EXPECT_FALSE(spec.structures.empty()) << kernel->name();
    for (const auto& ds : spec.structures) {
      EXPECT_TRUE(kernel->registry().find(ds.name).has_value())
          << kernel->name() << "/" << ds.name;
      EXPECT_GT(ds.size_bytes, 0u);
      EXPECT_FALSE(ds.patterns.empty());
    }
  }
}

TEST(Suite, TracedRunsAreRepeatable) {
  auto suite = make_verification_suite();
  for (auto& kernel : suite) {
    CacheSimulator first(caches::small_verification());
    kernel->run_traced(first);
    CacheSimulator second(caches::small_verification());
    kernel->run_traced(second);
    const ModelSpec spec = kernel->model_spec();
    for (const auto& ds : spec.structures) {
      const auto id = *kernel->registry().find(ds.name);
      EXPECT_EQ(first.stats(id).accesses, second.stats(id).accesses)
          << kernel->name() << "/" << ds.name;
      EXPECT_EQ(first.stats(id).misses, second.stats(id).misses)
          << kernel->name() << "/" << ds.name;
    }
  }
}

TEST(Suite, CountingMatchesSimulatorProbeTotalsAtLineGranularity) {
  // The simulator counts line-granular probes; the counting recorder counts
  // logical references. For kernels whose elements never straddle lines the
  // two agree exactly.
  auto suite = make_verification_suite();
  for (auto& kernel : suite) {
    if (kernel->name() == "CG") {
      continue;  // CG's doubles on 32B lines never straddle either, but the
                 // run is long; skip for test-time budget
    }
    CountingRecorder counts;
    kernel->run_counting(counts);
    CacheSimulator sim(caches::small_verification());
    kernel->run_traced(sim);
    for (const auto& ds : kernel->model_spec().structures) {
      const auto id = *kernel->registry().find(ds.name);
      EXPECT_EQ(counts.counts(id).total(), sim.stats(id).accesses)
          << kernel->name() << "/" << ds.name;
    }
  }
}

TEST(Suite, TimedRunsReturnPositiveDurations) {
  auto suite = make_verification_suite();
  for (auto& kernel : suite) {
    EXPECT_GT(kernel->run_timed(), 0.0) << kernel->name();
  }
}

TEST(Suite, HierarchyTracingWorksThroughTheAdapter) {
  auto suite = make_verification_suite();
  for (auto& kernel : suite) {
    if (kernel->name() != "VM") {
      continue;
    }
    CacheHierarchy hierarchy(
        {{"l1", 2, 32, 32}, caches::small_verification()});
    kernel->run_traced(hierarchy);
    const auto id = *kernel->registry().find("A");
    EXPECT_GT(hierarchy.level_stats(0, id).accesses, 0u);
    EXPECT_GT(hierarchy.main_memory_accesses(id), 0u);
  }
}

}  // namespace
}  // namespace dvf::kernels
