// Tests for the VM kernel: computation, instrumentation, self-description.
#include "dvf/kernels/vm.hpp"

#include <gtest/gtest.h>

#include <variant>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/error.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/streaming.hpp"

namespace dvf::kernels {
namespace {

TEST(VmKernel, ComputesTheProduct) {
  VectorMultiply::Config config;
  config.iterations = 100;
  config.stride_a = 1;
  config.stride_b = 1;
  config.stride_c = 1;
  VectorMultiply vm(config);
  NullRecorder null;
  vm.run(null);
  // A[i] = i%7+1, B[i] = i%5+1, C[i] = A[i]*B[i]; checksum is deterministic.
  std::int64_t expected = 0;
  for (int i = 0; i < 100; ++i) {
    expected += static_cast<std::int64_t>(i % 7 + 1) * (i % 5 + 1);
  }
  EXPECT_EQ(vm.checksum(), expected);
}

TEST(VmKernel, ResetRestoresTheAccumulator) {
  VectorMultiply vm({.iterations = 50});
  NullRecorder null;
  vm.run(null);
  const std::int64_t once = vm.checksum();
  vm.run(null);  // accumulates again
  EXPECT_EQ(vm.checksum(), 2 * once);
  vm.reset();
  vm.run(null);
  EXPECT_EQ(vm.checksum(), once);
}

TEST(VmKernel, ReferenceCountsMatchTheAlgorithm) {
  VectorMultiply::Config config;
  config.iterations = 1000;
  VectorMultiply vm(config);
  CountingRecorder counts;
  vm.run(counts);
  const auto a = *vm.registry().find("A");
  const auto b = *vm.registry().find("B");
  const auto c = *vm.registry().find("C");
  EXPECT_EQ(counts.counts(a).loads, 1000u);
  EXPECT_EQ(counts.counts(a).stores, 0u);
  EXPECT_EQ(counts.counts(b).loads, 1000u);
  EXPECT_EQ(counts.counts(c).loads, 1000u);
  EXPECT_EQ(counts.counts(c).stores, 1000u);
}

TEST(VmKernel, ModelSpecMirrorsTableII) {
  VectorMultiply vm({.iterations = 1000});
  const ModelSpec spec = vm.model_spec();
  EXPECT_EQ(spec.name, "VM");
  ASSERT_EQ(spec.structures.size(), 3u);
  for (const auto& ds : spec.structures) {
    ASSERT_EQ(ds.patterns.size(), 1u);
    EXPECT_TRUE(std::holds_alternative<StreamingSpec>(ds.patterns[0]));
  }
  // A's stride (4) gives it the largest footprint.
  EXPECT_GT(spec.structures[0].size_bytes, spec.structures[1].size_bytes);
}

TEST(VmKernel, ModelMatchesSimulatorExactlyForStreams) {
  VectorMultiply vm({.iterations = 1000});
  CacheSimulator sim(caches::small_verification());
  vm.reset();
  vm.run(sim);
  const ModelSpec spec = vm.model_spec();
  for (const auto& ds : spec.structures) {
    const auto id = *vm.registry().find(ds.name);
    const auto* stream = std::get_if<StreamingSpec>(&ds.patterns[0]);
    ASSERT_NE(stream, nullptr);
    EXPECT_DOUBLE_EQ(estimate_streaming(*stream, sim.config()),
                     static_cast<double>(sim.stats(id).misses))
        << ds.name;
  }
}

TEST(VmKernel, RejectsDegenerateConfigs) {
  EXPECT_THROW(VectorMultiply({.iterations = 0}), InvalidArgumentError);
  EXPECT_THROW(VectorMultiply({.iterations = 10, .stride_a = 0}),
               InvalidArgumentError);
  EXPECT_THROW(VectorMultiply({.iterations = 10, .repeats = 0}),
               InvalidArgumentError);
}

}  // namespace
}  // namespace dvf::kernels
