// Unit tests for the numerics substrate: log-gamma combinatorics,
// hypergeometric/binomial distributions, stable summation.
#include "dvf/common/math.hpp"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace dvf::math {
namespace {

TEST(LogBinomial, MatchesSmallExactValues) {
  EXPECT_DOUBLE_EQ(binomial(0, 0), 1.0);
  EXPECT_NEAR(binomial(5, 2), 10.0, 1e-9);
  EXPECT_NEAR(binomial(10, 5), 252.0, 1e-7);
  EXPECT_NEAR(binomial(52, 5), 2598960.0, 1e-2);
}

TEST(LogBinomial, OutOfRangeIsZero) {
  EXPECT_EQ(binomial(5, 6), 0.0);
  EXPECT_EQ(binomial(5, -1), 0.0);
  EXPECT_EQ(binomial(-2, 1), 0.0);
  EXPECT_TRUE(std::isinf(log_binomial(3, 7)));
}

TEST(LogBinomial, SymmetricInK) {
  for (std::int64_t n = 1; n < 40; ++n) {
    for (std::int64_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(log_binomial(n, k), log_binomial(n, n - k), 1e-9)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(LogBinomial, LargePopulationsStayFinite) {
  const double lb = log_binomial(10'000'000, 5'000'000);
  EXPECT_TRUE(std::isfinite(lb));
  EXPECT_GT(lb, 0.0);
}

TEST(Hypergeometric, SumsToOneOverSupport) {
  const std::int64_t total = 50;
  const std::int64_t marked = 18;
  const std::int64_t draws = 12;
  double sum = 0.0;
  for (std::int64_t k = 0; k <= draws; ++k) {
    sum += hypergeometric_pmf(total, marked, draws, k);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Hypergeometric, MeanMatchesTheory) {
  const std::int64_t total = 200;
  const std::int64_t marked = 60;
  const std::int64_t draws = 25;
  double mean = 0.0;
  for (std::int64_t k = 0; k <= draws; ++k) {
    mean += static_cast<double>(k) * hypergeometric_pmf(total, marked, draws, k);
  }
  const double expected = static_cast<double>(draws) * marked / total;
  EXPECT_NEAR(mean, expected, 1e-9);
}

TEST(Hypergeometric, ZeroOutsideSupport) {
  // Drawing more marked items than exist is impossible.
  EXPECT_EQ(hypergeometric_pmf(10, 3, 5, 4), 0.0);
  // Drawing fewer marked items than forced by the pool size is impossible.
  EXPECT_EQ(hypergeometric_pmf(10, 8, 5, 2), 0.0);
  // Invalid configurations.
  EXPECT_EQ(hypergeometric_pmf(10, 12, 5, 3), 0.0);
  EXPECT_EQ(hypergeometric_pmf(10, 3, 12, 3), 0.0);
}

TEST(BinomialPmf, MatchesClosedForm) {
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
  EXPECT_NEAR(binomial_pmf(10, 0, 0.1), std::pow(0.9, 10), 1e-12);
  EXPECT_NEAR(binomial_pmf(10, 10, 0.1), std::pow(0.1, 10), 1e-20);
}

TEST(BinomialPmf, DegenerateProbabilities) {
  EXPECT_EQ(binomial_pmf(5, 0, 0.0), 1.0);
  EXPECT_EQ(binomial_pmf(5, 3, 0.0), 0.0);
  EXPECT_EQ(binomial_pmf(5, 5, 1.0), 1.0);
  EXPECT_EQ(binomial_pmf(5, 2, 1.0), 0.0);
}

TEST(BinomialPmf, SumsToOne) {
  const std::int64_t n = 64;
  const double p = 1.0 / 64.0;
  double sum = 0.0;
  for (std::int64_t k = 0; k <= n; ++k) {
    sum += binomial_pmf(n, k, p);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BinomialTail, ComplementsThePmf) {
  const std::int64_t n = 32;
  const double p = 0.07;
  for (std::int64_t k = 0; k <= n + 1; ++k) {
    double direct = 0.0;
    for (std::int64_t i = k; i <= n; ++i) {
      direct += binomial_pmf(n, i, p);
    }
    EXPECT_NEAR(binomial_tail(n, k, p), direct, 1e-10) << "k=" << k;
  }
}

TEST(KahanSum, RecoversSmallAddendsLostByNaiveSummation) {
  KahanSum sum;
  sum.add(1.0);
  for (int i = 0; i < 10'000'000; ++i) {
    sum.add(1e-16);
  }
  EXPECT_NEAR(sum.value(), 1.0 + 1e-9, 1e-12);
}

TEST(StableSum, MatchesKahan) {
  std::vector<double> xs(1000, 0.1);
  EXPECT_NEAR(stable_sum(xs), 100.0, 1e-12);
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(RelativeError, Conventions) {
  EXPECT_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_TRUE(std::isinf(relative_error(1.0, 0.0)));
  EXPECT_NEAR(relative_error(110.0, 100.0), 0.1, 1e-12);
}

TEST(ApproxEqual, ScalesWithMagnitude) {
  EXPECT_TRUE(approx_equal(1e12, 1e12 + 1.0, 1e-9));
  EXPECT_FALSE(approx_equal(1.0, 1.1, 1e-9));
}

TEST(WilsonHalfWidth, NoDataMeansMaximalUncertainty) {
  EXPECT_EQ(wilson_half_width(0, 0), 1.0);
}

TEST(WilsonHalfWidth, PinnedValue) {
  // p̂ = 0.5, n = 10, z = 1.959964: the 95% Wilson interval is
  // 0.5 ± 0.26340 (0.2366, 0.7634).
  EXPECT_NEAR(wilson_half_width(5, 10), 0.26340, 1e-4);
}

TEST(WilsonHalfWidth, SymmetricInSuccessesAndFailures) {
  for (std::uint64_t n : {1u, 7u, 100u}) {
    for (std::uint64_t k = 0; k <= n; ++k) {
      EXPECT_NEAR(wilson_half_width(k, n), wilson_half_width(n - k, n), 1e-12)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(WilsonHalfWidth, ShrinksWithSampleSizeAndStaysProper) {
  double previous = 1.0;
  for (std::uint64_t n = 10; n <= 100'000; n *= 10) {
    const double half = wilson_half_width(n / 2, n);
    EXPECT_GT(half, 0.0) << "n=" << n;
    EXPECT_LT(half, previous) << "n=" << n;
    previous = half;
  }
  // Unlike the Wald interval, the Wilson half-width is non-degenerate at
  // the boundaries p̂ = 0 and p̂ = 1.
  EXPECT_GT(wilson_half_width(0, 50), 0.0);
  EXPECT_LT(wilson_half_width(0, 50), 0.1);
  EXPECT_GT(wilson_half_width(50, 50), 0.0);
}

}  // namespace
}  // namespace dvf::math
