// Extremes of the checked combinatorics and compensated sums: populations at
// and beyond kMaxCombinatoricPopulation, out-of-support arguments that must
// be the exact value 0 (not an error), and Inf/NaN classification in
// checked_sum. Complements test_math.cpp, which covers the in-range values.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <utility>
#include <vector>

#include "dvf/common/math.hpp"
#include "dvf/common/result.hpp"

namespace dvf::math {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(CheckedLogBinomial, MatchesUncheckedInRange) {
  for (auto [n, k] : {std::pair<std::int64_t, std::int64_t>{10, 3},
                      {1000, 500},
                      {1 << 20, 17}}) {
    const auto checked = checked_log_binomial(n, k);
    ASSERT_TRUE(checked.ok()) << checked.error().describe();
    EXPECT_NEAR(checked.value(), log_binomial(n, k),
                1e-9 * std::abs(log_binomial(n, k)) + 1e-9);
  }
}

TEST(CheckedLogBinomial, EdgeOfSupportIsExact) {
  // k == N and k == 0: exactly one way, so ln C = 0 — a value, not an error.
  const auto full = checked_log_binomial(1 << 16, 1 << 16);
  ASSERT_TRUE(full.ok());
  EXPECT_DOUBLE_EQ(full.value(), 0.0);
  const auto none = checked_log_binomial(1 << 16, 0);
  ASSERT_TRUE(none.ok());
  EXPECT_DOUBLE_EQ(none.value(), 0.0);
}

TEST(CheckedLogBinomial, OutOfSupportIsNegativeInfinityValue) {
  // Zero coefficients are represented as ln 0 = -inf, deliberately a VALUE:
  // exp() of it is the true coefficient.
  const auto above = checked_log_binomial(10, 11);
  ASSERT_TRUE(above.ok());
  EXPECT_EQ(above.value(), -kInf);
  const auto negative = checked_log_binomial(10, -1);
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative.value(), -kInf);
}

TEST(CheckedLogBinomial, PopulationGuardTripsBeyondTheLimit) {
  const std::int64_t big = kMaxCombinatoricPopulation;
  EXPECT_TRUE(checked_log_binomial(big, 2).ok());
  const auto over = checked_log_binomial(big + 1, 2);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.error().kind, ErrorKind::kOverflow);

  // Populations near 2^62 — the adversarial range the fuzz harness feeds —
  // must classify, not return a meaningless log-gamma difference.
  const auto huge = checked_log_binomial(std::int64_t{1} << 62, 5);
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.error().kind, ErrorKind::kOverflow);
}

TEST(CheckedBinomial, ClassifiesExpOverflow) {
  // ln C(2^40, 2^39) ≈ 7.6e11 nats: the log is finite but exp() leaves the
  // double range. Must be a classified overflow, not +inf.
  const auto r = checked_binomial(std::int64_t{1} << 40, std::int64_t{1} << 39);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kOverflow);
}

TEST(CheckedBinomial, SmallValuesExactAndOutOfSupportZero) {
  const auto c52 = checked_binomial(5, 2);
  ASSERT_TRUE(c52.ok());
  EXPECT_NEAR(c52.value(), 10.0, 1e-9);
  const auto zero = checked_binomial(5, 7);
  ASSERT_TRUE(zero.ok());
  EXPECT_DOUBLE_EQ(zero.value(), 0.0);
}

TEST(CheckedHypergeometric, MatchesUncheckedInRange) {
  const auto p = checked_hypergeometric_pmf(50, 10, 20, 4);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), hypergeometric_pmf(50, 10, 20, 4), 1e-12);
}

TEST(CheckedHypergeometric, OutOfSupportIsExactZero) {
  // draws > total, marked > total, k beyond the draw count: all probability
  // zero by definition — values, not errors (matches the unchecked pmf).
  for (auto [total, marked, draws, k] :
       {std::array<std::int64_t, 4>{10, 3, 11, 1},
        {10, 11, 5, 1},
        {10, 3, 5, 6},
        {10, 3, 5, -1}}) {
    const auto r = checked_hypergeometric_pmf(total, marked, draws, k);
    ASSERT_TRUE(r.ok()) << r.error().describe();
    EXPECT_DOUBLE_EQ(r.value(), 0.0)
        << "total=" << total << " marked=" << marked << " draws=" << draws
        << " k=" << k;
  }
}

TEST(CheckedHypergeometric, FullDrawIsCertain) {
  // Drawing the whole population must find every marked item: P = 1 exactly
  // at the support's edge (k == marked, draws == total).
  const auto r = checked_hypergeometric_pmf(100, 30, 100, 30);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.value(), 1.0, 1e-9);
}

TEST(CheckedHypergeometric, PopulationGuardCoversNNear2To62) {
  const auto r = checked_hypergeometric_pmf(std::int64_t{1} << 62,
                                            std::int64_t{1} << 20, 100, 5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kOverflow);
}

TEST(CheckedSum, SumsFiniteSpansLikeStableSum) {
  const std::vector<double> xs{0.25, 0.5, 0.125, 1e6, -1e6};
  const auto r = checked_sum(xs);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.875);
  EXPECT_DOUBLE_EQ(r.value(), stable_sum(xs));
}

TEST(CheckedSum, EmptySpanIsExactZero) {
  const auto r = checked_sum(std::span<const double>{});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(CheckedSum, ClassifiesNanInputWithItsIndex) {
  const std::vector<double> xs{1.0, 2.0, std::nan(""), 4.0};
  const auto r = checked_sum(xs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kNonFinite);
  EXPECT_NE(r.error().message.find("2"), std::string::npos)
      << "message should name the offending index: " << r.error().message;
}

TEST(CheckedSum, ClassifiesInfInput) {
  const std::vector<double> xs{1.0, kInf};
  const auto r = checked_sum(xs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kNonFinite);
}

TEST(CheckedSum, ClassifiesAccumulatedOverflow) {
  // Each term is finite but the total leaves the double range.
  const std::vector<double> xs{1e308, 1e308};
  const auto r = checked_sum(xs);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kOverflow);

  // Once the Kahan compensation itself has gone non-finite (three huge
  // terms: inf - inf = NaN), the classified kind degrades to non_finite —
  // still a classified error, never a silent NaN.
  const std::vector<double> three{1e308, 1e308, 1e308};
  const auto r3 = checked_sum(three);
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.error().kind, ErrorKind::kNonFinite);
}

TEST(StableSum, PropagatesNanForHotPaths) {
  // The unchecked hot-path sum intentionally lets NaN through — the checked
  // boundary (finite_or_error / checked_sum) is where classification lives.
  const std::vector<double> xs{1.0, std::nan("")};
  EXPECT_TRUE(std::isnan(stable_sum(xs)));
}

TEST(UncheckedLogBinomial, StaysFiniteLogSpaceEvenWhenExpWould) {
  // The log-space value for a huge coefficient is finite; only exp()
  // overflows. This is exactly why checked_binomial exists.
  const double ln = log_binomial(std::int64_t{1} << 30, std::int64_t{1} << 29);
  EXPECT_TRUE(std::isfinite(ln));
  EXPECT_GT(ln, 700.0);  // exp(ln) would be +inf
}

}  // namespace
}  // namespace dvf::math
