// Unit tests for the memory failure model and the Table VII ECC rates.
#include "dvf/machine/memory_model.hpp"

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"
#include "dvf/machine/machine.hpp"

namespace dvf {
namespace {

TEST(EccTable, MatchesTableVII) {
  EXPECT_DOUBLE_EQ(fit_rate(EccScheme::kNone), 5000.0);
  EXPECT_DOUBLE_EQ(fit_rate(EccScheme::kSecDed), 1300.0);
  EXPECT_DOUBLE_EQ(fit_rate(EccScheme::kChipkill), 0.02);
}

TEST(EccTable, OrderingIsChipkillBestSecdedMiddle) {
  EXPECT_LT(fit_rate(EccScheme::kChipkill), fit_rate(EccScheme::kSecDed));
  EXPECT_LT(fit_rate(EccScheme::kSecDed), fit_rate(EccScheme::kNone));
}

TEST(EccParsing, RoundTrips) {
  for (const auto scheme : {EccScheme::kNone, EccScheme::kSecDed,
                            EccScheme::kChipkill}) {
    EXPECT_EQ(ecc_from_string(to_string(scheme)), scheme);
  }
}

TEST(EccParsing, RejectsUnknownNames) {
  EXPECT_THROW((void)ecc_from_string("parity"), InvalidArgumentError);
  EXPECT_THROW((void)ecc_from_string("SECDED"), InvalidArgumentError);
  EXPECT_THROW((void)ecc_from_string(""), InvalidArgumentError);
}

TEST(MemoryModel, StoresArbitraryPositiveFit) {
  EXPECT_DOUBLE_EQ(MemoryModel(123.5).fit(), 123.5);
  EXPECT_DOUBLE_EQ(MemoryModel::with_ecc(EccScheme::kChipkill).fit(), 0.02);
}

TEST(MemoryModel, RejectsNonPositiveFit) {
  EXPECT_THROW(MemoryModel(0.0), InvalidArgumentError);
  EXPECT_THROW(MemoryModel(-1.0), InvalidArgumentError);
}

TEST(Machine, WithCacheDefaultsToUnprotectedDram) {
  const Machine m = Machine::with_cache(caches::profiling_16kb());
  EXPECT_DOUBLE_EQ(m.memory.fit(), 5000.0);
  EXPECT_EQ(m.llc.name(), "16KB");
}

}  // namespace
}  // namespace dvf
