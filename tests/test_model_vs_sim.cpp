// Synthetic cross-validation: each analytical model against the LRU
// simulator on purpose-built reference streams (independent of the six
// kernels). These are the model-level ground-truth checks the paper's
// Fig. 4 aggregates.
#include <gtest/gtest.h>

#include <vector>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/patterns/estimate.hpp"

namespace dvf {
namespace {

CacheConfig cache8k() { return {"c8k", 4, 64, 32}; }

// ---- random model (Eqs. 5–7) against a genuinely uniform workload --------

struct RandomCase {
  std::uint64_t elements;
  std::uint32_t element_bytes;
  std::uint64_t visits;
  std::uint64_t iterations;
};

class UniformRandomVsSim : public ::testing::TestWithParam<RandomCase> {};

TEST_P(UniformRandomVsSim, WithinPaperBand) {
  const RandomCase c = GetParam();
  const CacheConfig config = cache8k();
  CacheSimulator sim(config);
  Xoshiro256 rng(77);

  // Construction traversal (the model's assumption), then uniform visits of
  // k DISTINCT elements per iteration.
  for (std::uint64_t e = 0; e < c.elements; ++e) {
    sim.on_load(0, e * c.element_bytes, c.element_bytes);
  }
  std::vector<std::uint64_t> picks(c.visits);
  for (std::uint64_t it = 0; it < c.iterations; ++it) {
    for (std::uint64_t v = 0; v < c.visits; ++v) {
      // Distinctness via rejection against this iteration's picks.
      std::uint64_t e;
      bool fresh;
      do {
        e = rng.below(c.elements);
        fresh = true;
        for (std::uint64_t w = 0; w < v; ++w) {
          fresh = fresh && picks[w] != e;
        }
      } while (!fresh);
      picks[v] = e;
      sim.on_load(0, e * c.element_bytes, c.element_bytes);
    }
  }

  RandomSpec spec;
  spec.element_count = c.elements;
  spec.element_bytes = c.element_bytes;
  spec.visits_per_iteration = static_cast<double>(c.visits);
  spec.iterations = c.iterations;

  const double predicted = estimate_random(spec, config);
  const double simulated = static_cast<double>(sim.stats(0).misses);
  EXPECT_LE(math::relative_error(predicted, simulated), 0.15)
      << "predicted " << predicted << " simulated " << simulated;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UniformRandomVsSim,
    ::testing::Values(
        RandomCase{2000, 32, 20, 500},   // footprint 8x the cache
        RandomCase{1000, 32, 50, 300},   // 4x
        RandomCase{4000, 16, 10, 1000},  // smaller elements
        RandomCase{200, 32, 30, 500},    // fits: compulsory only
        RandomCase{512, 64, 8, 400}));   // big elements

// ---- reuse model (Eqs. 8–15) against traverse/interfere/repeat loops -----

struct ReuseCase {
  std::uint64_t self_bytes;
  std::uint64_t other_bytes;
  std::uint64_t rounds;
};

class ReuseVsSim : public ::testing::TestWithParam<ReuseCase> {};

TEST_P(ReuseVsSim, WithinPaperBand) {
  const ReuseCase c = GetParam();
  const CacheConfig config = cache8k();
  CacheSimulator sim(config);

  const auto traverse = [&](DsId ds, std::uint64_t base, std::uint64_t bytes) {
    for (std::uint64_t offset = 0; offset < bytes; offset += 8) {
      sim.on_load(ds, base + offset, 8);
    }
  };

  // Load A, then per round: interfering traversal of B, re-traversal of A.
  const std::uint64_t base_a = 0;
  const std::uint64_t base_b = 1 << 26;  // disjoint address ranges
  traverse(0, base_a, c.self_bytes);
  for (std::uint64_t round = 0; round < c.rounds; ++round) {
    if (c.other_bytes > 0) {
      traverse(1, base_b, c.other_bytes);
    }
    traverse(0, base_a, c.self_bytes);
  }

  ReuseSpec spec;
  spec.self_bytes = c.self_bytes;
  spec.other_bytes = c.other_bytes;
  spec.reuse_rounds = c.rounds;
  spec.occupancy = ReuseOccupancy::kContiguous;  // contiguous arrays here

  const double predicted = estimate_reuse(spec, config);
  const double simulated = static_cast<double>(sim.stats(0).misses);
  EXPECT_LE(math::relative_error(predicted, simulated), 0.15)
      << "predicted " << predicted << " simulated " << simulated;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReuseVsSim,
    ::testing::Values(
        ReuseCase{2048, 1024, 20},     // both fit together: one load
        ReuseCase{4096, 65536, 10},    // interferer flushes A every round
        ReuseCase{65536, 65536, 5},    // A itself exceeds the cache
        ReuseCase{8192, 0, 15},        // A alone, exactly cache-sized
        ReuseCase{2048, 1 << 20, 8})); // overwhelming interference

// ---- template model against arbitrary recorded streams -------------------

TEST(TemplateVsSim, MatchesSimulatorOnStencilStream) {
  // 2-D 5-point stencil over a grid that exceeds the cache.
  const CacheConfig config = cache8k();
  const std::uint64_t n = 64;  // 64x64 doubles = 32 KiB > 8 KiB
  TemplateSpec spec;
  spec.element_bytes = 8;
  for (std::uint64_t i = 1; i + 1 < n; ++i) {
    for (std::uint64_t j = 1; j + 1 < n; ++j) {
      const std::uint64_t center = i * n + j;
      spec.element_indices.push_back(center - 1);
      spec.element_indices.push_back(center + 1);
      spec.element_indices.push_back(center - n);
      spec.element_indices.push_back(center + n);
      spec.element_indices.push_back(center);
    }
  }
  spec.repetitions = 4;

  CacheSimulator sim(config);
  for (std::uint64_t rep = 0; rep < spec.repetitions; ++rep) {
    for (const std::uint64_t idx : spec.element_indices) {
      sim.on_load(0, idx * 8, 8);
    }
  }
  const double predicted = estimate_template(spec, config);
  const double simulated = static_cast<double>(sim.stats(0).misses);
  EXPECT_LE(math::relative_error(predicted, simulated), 0.15)
      << "predicted " << predicted << " simulated " << simulated;
}

TEST(TemplateVsSim, ExactForFullyAssociativeFriendlyStreams) {
  // A stream whose stack distances are far from the capacity boundary is
  // predicted exactly: repeated scan of half the cache.
  const CacheConfig config = cache8k();
  TemplateSpec spec;
  spec.element_bytes = 32;  // one block per element
  for (int rep = 0; rep < 6; ++rep) {
    for (std::uint64_t i = 0; i < 128; ++i) {  // half of the 256 blocks
      spec.element_indices.push_back(i);
    }
  }
  CacheSimulator sim(config);
  for (const std::uint64_t idx : spec.element_indices) {
    sim.on_load(0, idx * 32, 32);
  }
  EXPECT_DOUBLE_EQ(estimate_template(spec, config),
                   static_cast<double>(sim.stats(0).misses));
}

}  // namespace
}  // namespace dvf
