// Observability layer: sharded metrics aggregate exactly under concurrency,
// histogram bucket boundaries are pinned, span nesting survives into the
// exported Chrome trace (validated with a real JSON parser), and the
// campaign's outcome counters equal its reported taxonomy counts.
//
// Every test resets the registry and leaves the layer disabled, so suites
// sharing a process never see each other's samples.
#include <cctype>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dvf/kernels/injection_campaign.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/obs/trace_export.hpp"

namespace dvf {
namespace {

/// Enables a clean obs recording for one test body; disables on exit.
class ObsSession {
 public:
  ObsSession() {
    obs::reset();
    obs::set_enabled(true);
  }
  ~ObsSession() {
    obs::set_enabled(false);
    obs::reset();
  }
  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;
};

std::uint64_t counter_value(const obs::MetricsSnapshot& snapshot,
                            const std::string& name) {
  for (const auto& [key, value] : snapshot.counters) {
    if (key == name) {
      return value;
    }
  }
  ADD_FAILURE() << "counter not in snapshot: " << name;
  return 0;
}

double gauge_value(const obs::MetricsSnapshot& snapshot,
                   const std::string& name) {
  for (const auto& [key, value] : snapshot.gauges) {
    if (key == name) {
      return value;
    }
  }
  ADD_FAILURE() << "gauge not in snapshot: " << name;
  return 0.0;
}

const obs::HistogramSnapshot* find_histogram(
    const obs::MetricsSnapshot& snapshot, const std::string& name) {
  for (const obs::HistogramSnapshot& hist : snapshot.histograms) {
    if (hist.name == name) {
      return &hist;
    }
  }
  ADD_FAILURE() << "histogram not in snapshot: " << name;
  return nullptr;
}

// --- Minimal JSON parser -----------------------------------------------------
//
// Just enough JSON to validate the exporter's output structurally: the
// grammar of RFC 8259 minus \u surrogate pairs (the exporter never emits
// non-ASCII). Parse failures are test failures.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  [[nodiscard]] bool has(const std::string& key) const {
    return members.count(key) != 0;
  }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    const auto it = members.find(key);
    if (it == members.end()) {
      ADD_FAILURE() << "missing JSON key: " << key;
      static const JsonValue null_value;
      return null_value;
    }
    return it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters");
    }
    return value;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  void fail(const std::string& message) {
    if (ok_) {
      ok_ = false;
      error_ = message + " at offset " + std::to_string(pos_);
    }
    pos_ = text_.size();  // stop consuming
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') {
      return parse_object();
    }
    if (c == '[') {
      return parse_array();
    }
    if (c == '"') {
      JsonValue value;
      value.kind = JsonValue::Kind::kString;
      value.text = parse_string();
      return value;
    }
    if (c == 't' || c == 'f') {
      return parse_keyword(c == 't' ? "true" : "false", c == 't');
    }
    if (c == 'n') {
      JsonValue value;
      if (text_.substr(pos_, 4) != "null") {
        fail("bad keyword");
      }
      pos_ += 4;
      return value;
    }
    return parse_number();
  }

  JsonValue parse_keyword(std::string_view word, bool value) {
    JsonValue out;
    out.kind = JsonValue::Kind::kBool;
    out.boolean = value;
    if (text_.substr(pos_, word.size()) != word) {
      fail("bad keyword");
    }
    pos_ += word.size();
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    if (pos_ == start) {
      fail("expected a number");
      return value;
    }
    value.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return value;
  }

  std::string parse_string() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
          return out;
        }
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("bad \\u escape");
              return out;
            }
            c = static_cast<char>(
                std::stoul(std::string(text_.substr(pos_, 4)), nullptr, 16));
            pos_ += 4;
            break;
          }
          default:
            fail("unknown escape");
            return out;
        }
      }
      out += c;
    }
    if (!consume('"')) {
      fail("unterminated string");
    }
    return out;
  }

  JsonValue parse_array() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    consume('[');
    skip_ws();
    if (consume(']')) {
      return value;
    }
    do {
      value.items.push_back(parse_value());
    } while (consume(','));
    if (!consume(']')) {
      fail("expected ',' or ']'");
    }
    return value;
  }

  JsonValue parse_object() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    consume('{');
    skip_ws();
    if (consume('}')) {
      return value;
    }
    do {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected a key string");
        return value;
      }
      const std::string key = parse_string();
      if (!consume(':')) {
        fail("expected ':'");
        return value;
      }
      value.members[key] = parse_value();
    } while (consume(','));
    if (!consume('}')) {
      fail("expected ',' or '}'");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

JsonValue parse_json(const std::string& text) {
  JsonParser parser(text);
  JsonValue value = parser.parse();
  EXPECT_TRUE(parser.ok()) << parser.error() << "\nin: " << text;
  return value;
}

// --- Metrics ---------------------------------------------------------------

TEST(ObsMetrics, DisabledRecordsNothing) {
  obs::reset();
  obs::set_enabled(false);
  const obs::Counter c = obs::counter("test.disabled_counter");
  c.add(41);
  const obs::Histogram h = obs::histogram("test.disabled_hist");
  h.record(7);
  {
    const obs::ScopedSpan span("test.disabled_span");
  }
  const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
  EXPECT_EQ(counter_value(snapshot, "test.disabled_counter"), 0u);
  EXPECT_TRUE(obs::snapshot_spans().empty());
}

TEST(ObsMetrics, RegistrationIsIdempotent) {
  const ObsSession session;
  const obs::Counter first = obs::counter("test.same_counter");
  const obs::Counter second = obs::counter("test.same_counter");
  first.add(2);
  second.add(3);
  EXPECT_EQ(counter_value(obs::snapshot_metrics(), "test.same_counter"), 5u);
}

TEST(ObsMetrics, GaugeKeepsLastWrite) {
  const ObsSession session;
  const obs::Gauge g = obs::gauge("test.gauge");
  g.set(1.5);
  g.set(-3.25);
  EXPECT_DOUBLE_EQ(gauge_value(obs::snapshot_metrics(), "test.gauge"), -3.25);
}

TEST(ObsMetrics, ResetZeroesValuesButKeepsHandles) {
  const ObsSession session;
  const obs::Counter c = obs::counter("test.reset_counter");
  c.add(10);
  obs::reset();
  obs::set_enabled(true);  // reset() is orthogonal to the enable switch
  c.add(4);
  EXPECT_EQ(counter_value(obs::snapshot_metrics(), "test.reset_counter"), 4u);
}

TEST(ObsMetrics, HistogramBucketBoundariesArePinned) {
  // bucket_of is bit_width: bucket 0 = {0}, bucket i = [2^(i-1), 2^i - 1].
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(7), 3u);
  EXPECT_EQ(obs::Histogram::bucket_of(8), 4u);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11u);
  EXPECT_EQ(obs::Histogram::bucket_of((1ull << 63) - 1), 63u);
  EXPECT_EQ(obs::Histogram::bucket_of(1ull << 63), 64u);
  EXPECT_EQ(obs::Histogram::bucket_of(std::numeric_limits<std::uint64_t>::max()),
            64u);
  static_assert(obs::Histogram::kBuckets == 65);

  EXPECT_EQ(obs::Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(obs::Histogram::bucket_upper_bound(11), 2047u);
  EXPECT_EQ(obs::Histogram::bucket_upper_bound(64),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(ObsMetrics, HistogramSnapshotsBucketCountsAndSum) {
  const ObsSession session;
  const obs::Histogram h = obs::histogram("test.hist");
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(1000);
  const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
  const obs::HistogramSnapshot* found = find_histogram(snapshot, "test.hist");
  ASSERT_NE(found, nullptr);
  const obs::HistogramSnapshot& hist = *found;
  EXPECT_EQ(hist.count, 5u);
  EXPECT_EQ(hist.sum, 1006u);
  // Non-empty buckets: {0}:1, [1,1]:1, [2,3]:2, [512,1023]:1.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> expected = {
      {0, 1}, {1, 1}, {3, 2}, {1023, 1}};
  EXPECT_EQ(hist.buckets, expected);
}

TEST(ObsMetrics, MetricsJsonParses) {
  const ObsSession session;
  obs::counter("test.json_counter").add(3);
  obs::gauge("test.json_gauge").set(2.5);
  obs::histogram("test.json_hist").record(9);
  const JsonValue root =
      parse_json(obs::render_metrics_json(obs::snapshot_metrics()));
  EXPECT_EQ(root.at("counters").at("test.json_counter").number, 3.0);
  EXPECT_EQ(root.at("gauges").at("test.json_gauge").number, 2.5);
  const JsonValue& hist = root.at("histograms").at("test.json_hist");
  EXPECT_EQ(hist.at("count").number, 1.0);
  EXPECT_EQ(hist.at("sum").number, 9.0);
  ASSERT_EQ(hist.at("buckets").items.size(), 1u);
  EXPECT_EQ(hist.at("buckets").items[0].at("le").number, 15.0);
}

TEST(ParallelObsMetrics, ConcurrentCounterIncrementsSumExactly) {
  const ObsSession session;
  const obs::Counter c = obs::counter("test.concurrent_counter");
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(counter_value(obs::snapshot_metrics(), "test.concurrent_counter"),
            kThreads * kPerThread);
}

TEST(ParallelObsMetrics, ConcurrentHistogramsMergeAcrossShards) {
  const ObsSession session;
  const obs::Histogram h = obs::histogram("test.concurrent_hist");
  constexpr unsigned kThreads = 6;
  constexpr std::uint64_t kPerThread = 1'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(i);
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
  const obs::HistogramSnapshot* hist =
      find_histogram(snapshot, "test.concurrent_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, kThreads * kPerThread);
  EXPECT_EQ(hist->sum, kThreads * (kPerThread * (kPerThread - 1) / 2));
}

TEST(ParallelObsMetrics, SpansFromManyThreadsAllRecorded) {
  const ObsSession session;
  constexpr unsigned kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const obs::ScopedSpan span("test.thread_span");
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(obs::snapshot_spans().size(), kThreads * kSpansPerThread);
}

// --- Spans and the Chrome-trace export -------------------------------------

TEST(ObsSpans, NestingAssignsDepthAndParentIds) {
  const ObsSession session;
  {
    const obs::ScopedSpan outer("test.outer");
    {
      const obs::ScopedSpan inner("test.inner");
      const obs::ScopedSpan leaf("test.leaf");
    }
    const obs::ScopedSpan sibling("test.sibling");
  }
  const std::vector<obs::SpanRecord> spans = obs::snapshot_spans();
  ASSERT_EQ(spans.size(), 4u);
  // Ordered by start time: outer, inner, leaf, sibling.
  EXPECT_STREQ(spans[0].name, "test.outer");
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_STREQ(spans[1].name, "test.inner");
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[1].depth, 2u);
  EXPECT_STREQ(spans[2].name, "test.leaf");
  EXPECT_EQ(spans[2].parent, spans[1].id);
  EXPECT_EQ(spans[2].depth, 3u);
  EXPECT_STREQ(spans[3].name, "test.sibling");
  EXPECT_EQ(spans[3].parent, spans[0].id);
  EXPECT_EQ(spans[3].depth, 2u);
  // Containment: children start and end inside their parent.
  EXPECT_GE(spans[1].start_ns, spans[0].start_ns);
  EXPECT_LE(spans[2].end_ns, spans[0].end_ns);
}

TEST(ObsSpans, ChromeTraceExportIsValidAndNested) {
  const ObsSession session;
  {
    const obs::ScopedSpan outer("test.outer");
    const obs::ScopedSpan inner("test.inner");
  }
  obs::counter("test.export_counter").add(7);

  const JsonValue root = parse_json(obs::render_chrome_trace(
      obs::snapshot_spans(), obs::snapshot_metrics(), obs::thread_names(),
      "unit-test"));
  EXPECT_EQ(root.at("displayTimeUnit").text, "ns");
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);

  std::map<std::string, const JsonValue*> complete;  // name -> X event
  bool saw_process_name = false;
  bool saw_counter = false;
  for (const JsonValue& event : events.items) {
    const std::string& ph = event.at("ph").text;
    EXPECT_TRUE(event.has("pid"));
    EXPECT_TRUE(event.has("tid"));
    if (ph == "M" && event.at("name").text == "process_name") {
      saw_process_name = true;
      EXPECT_EQ(event.at("args").at("name").text, "unit-test");
    } else if (ph == "X") {
      EXPECT_TRUE(event.has("ts"));
      EXPECT_TRUE(event.has("dur"));
      complete[event.at("name").text] = &event;
    } else if (ph == "C" && event.at("name").text == "test.export_counter") {
      saw_counter = true;
      EXPECT_EQ(event.at("args").at("value").number, 7.0);
    }
  }
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(saw_counter);
  ASSERT_TRUE(complete.count("test.outer"));
  ASSERT_TRUE(complete.count("test.inner"));
  const JsonValue& outer = *complete["test.outer"];
  const JsonValue& inner = *complete["test.inner"];
  EXPECT_EQ(outer.at("args").at("depth").number, 1.0);
  EXPECT_EQ(inner.at("args").at("depth").number, 2.0);
  EXPECT_EQ(inner.at("args").at("parent").number,
            outer.at("args").at("id").number);
}

TEST(ObsSpans, SummaryRendersEveryMetricName) {
  const ObsSession session;
  obs::counter("test.summary_counter").add(2);
  obs::gauge("test.summary_gauge").set(1.0);
  obs::histogram("test.summary_hist").record(5);
  {
    const obs::ScopedSpan span("test.summary_span");
  }
  const std::string summary =
      obs::render_summary(obs::snapshot_metrics(), obs::snapshot_spans());
  EXPECT_NE(summary.find("test.summary_counter"), std::string::npos);
  EXPECT_NE(summary.find("test.summary_gauge"), std::string::npos);
  EXPECT_NE(summary.find("test.summary_hist"), std::string::npos);
  EXPECT_NE(summary.find("test.summary_span"), std::string::npos);
}

// --- Campaign integration ---------------------------------------------------

TEST(CampaignObsIntegration, OutcomeCountersEqualTaxonomyCounts) {
  const ObsSession session;
  kernels::KernelCaseAdapter<kernels::VectorMultiply> vm(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 100});
  kernels::CampaignConfig config;
  config.trials_per_structure = 40;
  config.threads = 3;
  const auto stats = kernels::run_injection_campaign(vm, config);
  ASSERT_FALSE(stats.empty());

  std::uint64_t trials = 0;
  std::uint64_t injected = 0;
  std::uint64_t masked = 0;
  std::uint64_t sdc = 0;
  std::uint64_t due_exception = 0;
  std::uint64_t due_hang = 0;
  std::uint64_t due_invalid = 0;
  for (const auto& s : stats) {
    trials += s.trials;
    injected += s.injected;
    masked += s.masked;
    sdc += s.sdc;
    due_exception += s.due_exception;
    due_hang += s.due_hang;
    due_invalid += s.due_invalid;
  }

  const obs::MetricsSnapshot snapshot = obs::snapshot_metrics();
  EXPECT_EQ(counter_value(snapshot, "campaign.trials"), trials);
  EXPECT_EQ(counter_value(snapshot, "campaign.injected"), injected);
  EXPECT_EQ(counter_value(snapshot, "campaign.masked"), masked);
  EXPECT_EQ(counter_value(snapshot, "campaign.sdc"), sdc);
  EXPECT_EQ(counter_value(snapshot, "campaign.due_exception"), due_exception);
  EXPECT_EQ(counter_value(snapshot, "campaign.due_hang"), due_hang);
  EXPECT_EQ(counter_value(snapshot, "campaign.due_invalid"), due_invalid);

  // The campaign opened its run/batch spans.
  bool saw_run = false;
  for (const obs::SpanRecord& span : obs::snapshot_spans()) {
    if (std::string_view(span.name) == "campaign.run") {
      saw_run = true;
    }
  }
  EXPECT_TRUE(saw_run);
}

}  // namespace
}  // namespace dvf
