// Tests for the parallel-execution layer (src/parallel) and its consumers:
// the thread pool, the deterministic parallel_for / parallel_reduce
// helpers, the multi-threaded injection campaign and the parallel DVF
// calculator. All suites here are named Parallel* so the ThreadSanitizer
// pass (scripts/run_tests.sh) can select them with one gtest filter.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "dvf/common/rng.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/kernels/fft.hpp"
#include "dvf/kernels/injection_campaign.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/parallel/parallel_for.hpp"
#include "dvf/parallel/thread_pool.hpp"

namespace dvf {
namespace {

TEST(ParallelThreadPool, RunsEveryIndexExactlyOnce) {
  parallel::ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  parallel::parallel_for(
      pool, hits.size(), [&](std::uint64_t i) { hits[i].fetch_add(1); },
      /*grain=*/7);
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelThreadPool, SingleSlotPoolRunsInOrderOnTheCaller) {
  parallel::ThreadPool pool(1);
  EXPECT_EQ(pool.concurrency(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::uint64_t> order;
  parallel::parallel_for(pool, 100, [&](std::uint64_t i, unsigned slot) {
    EXPECT_EQ(slot, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (std::uint64_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ParallelThreadPool, SlotsStayWithinConcurrency) {
  parallel::ThreadPool pool(3);
  std::atomic<bool> bad{false};
  parallel::parallel_for(pool, 500, [&](std::uint64_t, unsigned slot) {
    if (slot >= pool.concurrency()) {
      bad = true;
    }
  });
  EXPECT_FALSE(bad.load());
}

TEST(ParallelThreadPool, PropagatesTheFirstException) {
  parallel::ThreadPool pool(4);
  EXPECT_THROW(
      parallel::parallel_for(pool, 1000,
                             [&](std::uint64_t i) {
                               if (i == 137) {
                                 throw std::runtime_error("boom");
                               }
                             }),
      std::runtime_error);
  // The pool survives an exception and runs the next job normally.
  std::atomic<int> ran{0};
  parallel::parallel_for(pool, 10, [&](std::uint64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ParallelThreadPool, ZeroCountIsANoOp) {
  parallel::ThreadPool pool(2);
  parallel::parallel_for(pool, 0,
                         [](std::uint64_t) { FAIL() << "must not run"; });
}

TEST(ParallelThreadPool, DefaultThreadCountHonorsEnvVar) {
  ASSERT_EQ(setenv("DVF_THREADS", "3", 1), 0);
  EXPECT_EQ(parallel::default_thread_count(), 3u);
  ASSERT_EQ(setenv("DVF_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(parallel::default_thread_count(), 1u);
  ASSERT_EQ(unsetenv("DVF_THREADS"), 0);
  EXPECT_GE(parallel::default_thread_count(), 1u);
}

TEST(ParallelReduce, FloatingSumIsBitIdenticalAcrossThreadCounts) {
  const auto map = [](std::uint64_t i) {
    return 1.0 / static_cast<double>(i + 1);
  };
  const auto combine = [](double a, double b) { return a + b; };
  const std::uint64_t n = 10'000;

  std::vector<double> sums;
  for (const unsigned threads : {1u, 2u, 8u}) {
    parallel::ThreadPool pool(threads);
    sums.push_back(
        parallel::parallel_reduce(pool, n, 0.0, map, combine, /*grain=*/64));
  }
  // Non-associative combine: only the fixed chunk-order schedule makes
  // these bitwise equal.
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
  EXPECT_NEAR(sums[0], 9.787606036044348, 1e-9);  // harmonic number H_10000
}

// --- Campaign determinism across thread counts -----------------------------

using kernels::CampaignConfig;
using kernels::KernelCase;
using kernels::StructureInjectionStats;

/// The documented serial reference: for every spec structure s (index in
/// the model spec) and trial t, draw trigger, offset and bit — in that
/// order — from stream_rng(seed, s, t).
std::vector<StructureInjectionStats> serial_reference(KernelCase& kernel,
                                                      const CampaignConfig&
                                                          config) {
  const ModelSpec spec = kernel.model_spec();
  const std::uint64_t total_refs = kernel.total_references();
  std::vector<StructureInjectionStats> results;
  for (std::uint64_t s = 0; s < spec.structures.size(); ++s) {
    const auto id = kernel.registry().find(spec.structures[s].name);
    if (!id.has_value()) {
      continue;
    }
    const std::uint64_t size = kernel.registry().info(*id).size_bytes;
    StructureInjectionStats stats;
    stats.structure = spec.structures[s].name;
    for (std::uint64_t t = 0; t < config.trials_per_structure; ++t) {
      Xoshiro256 rng = stream_rng(config.seed, s, t);
      const std::uint64_t trigger = 1 + rng.below(total_refs);
      const std::uint64_t offset = rng.below(size);
      const auto bit = static_cast<std::uint8_t>(rng.below(8));
      const auto outcome = kernel.run_injected(*id, trigger, offset, bit);
      ++stats.trials;
      stats.injected += outcome.injected ? 1 : 0;
      stats.corrupted += outcome.corrupted ? 1 : 0;
    }
    results.push_back(stats);
  }
  return results;
}

void expect_identical(const std::vector<StructureInjectionStats>& a,
                      const std::vector<StructureInjectionStats>& b,
                      const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].structure, b[i].structure) << label;
    EXPECT_EQ(a[i].trials, b[i].trials) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].injected, b[i].injected) << label << " " << a[i].structure;
    EXPECT_EQ(a[i].corrupted, b[i].corrupted)
        << label << " " << a[i].structure;
  }
}

std::unique_ptr<KernelCase> make_small_vm() {
  return std::make_unique<kernels::KernelCaseAdapter<kernels::VectorMultiply>>(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 150});
}

std::unique_ptr<KernelCase> make_small_fft() {
  return std::make_unique<kernels::KernelCaseAdapter<kernels::Fft1D>>(
      "FT", "spectral", kernels::Fft1D::Config{.n = 256});
}

TEST(ParallelCampaign, ByteIdenticalAcrossThreadCountsAndToSerialOrder) {
  const auto factories = {&make_small_vm, &make_small_fft};
  for (const auto& factory : factories) {
    for (const std::uint64_t seed : {std::uint64_t{7}, std::uint64_t{2014}}) {
      CampaignConfig config;
      config.trials_per_structure = 8;
      config.seed = seed;

      auto reference_kernel = factory();
      const auto reference = serial_reference(*reference_kernel, config);
      ASSERT_FALSE(reference.empty());

      for (const unsigned threads : {1u, 2u, 8u}) {
        config.threads = threads;
        auto kernel = factory();
        const auto stats = kernels::run_injection_campaign(*kernel, config);
        expect_identical(stats, reference,
                         kernel->name() + " seed=" + std::to_string(seed) +
                             " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(ParallelCampaign, CloneReproducesTheKernel) {
  const auto original = make_small_vm();
  const auto copy = original->clone();
  EXPECT_EQ(copy->name(), original->name());
  EXPECT_EQ(copy->method_class(), original->method_class());
  EXPECT_EQ(copy->total_references(), original->total_references());
  EXPECT_DOUBLE_EQ(copy->clean_signature(), original->clean_signature());
  EXPECT_EQ(copy->registry().size(), original->registry().size());
}

// --- Parallel DVF calculator ----------------------------------------------

ModelSpec wide_synthetic_model(std::size_t structures) {
  ModelSpec model;
  model.name = "wide";
  model.exec_time_seconds = 1.5;
  for (std::size_t i = 0; i < structures; ++i) {
    DataStructureSpec ds;
    ds.name = "s" + std::to_string(i);
    ds.size_bytes = 4096 * (i + 1);
    StreamingSpec stream;
    stream.element_bytes = 8;
    stream.element_count = 512 * (i + 1);
    stream.stride_elements = 1 + i % 3;
    ds.patterns.push_back(PatternSpec{stream});
    model.structures.push_back(std::move(ds));
  }
  return model;
}

TEST(ParallelCalculator, WideModelIsBitIdenticalToSerial) {
  // Above the parallel threshold, so the threaded path actually engages.
  const ModelSpec model =
      wide_synthetic_model(DvfCalculator::kParallelStructureThreshold + 8);

  DvfCalculator serial(Machine::with_cache(caches::profiling_8mb()));
  serial.set_threads(1);
  const ApplicationDvf reference = serial.for_model(model);

  DvfCalculator threaded(Machine::with_cache(caches::profiling_8mb()));
  threaded.set_threads(8);
  const ApplicationDvf result = threaded.for_model(model);

  EXPECT_EQ(result.total, reference.total);  // bitwise, not approximate
  ASSERT_EQ(result.structures.size(), reference.structures.size());
  for (std::size_t i = 0; i < result.structures.size(); ++i) {
    EXPECT_EQ(result.structures[i].name, reference.structures[i].name);
    EXPECT_EQ(result.structures[i].dvf, reference.structures[i].dvf);
    EXPECT_EQ(result.structures[i].n_ha, reference.structures[i].n_ha);
    EXPECT_EQ(result.structures[i].n_error, reference.structures[i].n_error);
  }
}

TEST(ParallelSuite, EvaluateSuiteCoversEveryKernelInOrder) {
  std::vector<std::unique_ptr<KernelCase>> suite;
  suite.push_back(make_small_vm());
  suite.push_back(make_small_fft());
  const DvfCalculator calc(Machine::with_cache(caches::profiling_8mb()));
  const auto results = kernels::evaluate_suite(suite, calc, /*threads=*/2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].kernel, "VM");
  EXPECT_EQ(results[1].kernel, "FT");
  for (const auto& r : results) {
    EXPECT_GT(r.exec_time_seconds, 0.0);
    EXPECT_FALSE(r.dvf.structures.empty());
    EXPECT_GT(r.dvf.total, 0.0);
  }
}

}  // namespace
}  // namespace dvf
