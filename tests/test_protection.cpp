// Tests for the selective-protection planner.
#include "dvf/dvf/protection.hpp"

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"
#include "dvf/machine/cache_config.hpp"

namespace dvf {
namespace {

/// Two streaming structures: a hot one (most of the traffic) and a cold one.
ModelSpec two_structure_model() {
  ModelSpec model;
  model.name = "planner-test";
  model.exec_time_seconds = 1.0;
  const auto make = [](const char* name, std::uint64_t elements) {
    DataStructureSpec ds;
    ds.name = name;
    ds.size_bytes = elements * 8;
    StreamingSpec s;
    s.element_bytes = 8;
    s.element_count = elements;
    s.stride_elements = 1;
    ds.patterns.emplace_back(s);
    return ds;
  };
  model.structures.push_back(make("hot", 900000));
  model.structures.push_back(make("cold", 100000));
  return model;
}

ProtectionPlanner planner() {
  return {Machine::with_cache(caches::profiling_1mb()), two_structure_model(),
          {ProtectionMechanism::none(), ProtectionMechanism::secded(),
           ProtectionMechanism::chipkill()}};
}

TEST(Planner, TrafficSharesMatchFootprints) {
  const ProtectionPlanner p = planner();
  ASSERT_EQ(p.traffic_shares().size(), 2u);
  EXPECT_NEAR(p.traffic_shares()[0], 0.9, 1e-6);
  EXPECT_NEAR(p.traffic_shares()[1], 0.1, 1e-6);
}

TEST(Planner, NoneEverywhereReproducesBaseline) {
  const ProtectionPlanner p = planner();
  const ProtectionPlan plan = p.evaluate({0, 0});
  EXPECT_DOUBLE_EQ(plan.time_overhead, 0.0);
  EXPECT_NEAR(plan.total_dvf, plan.baseline_dvf, 1e-12 * plan.baseline_dvf);
  EXPECT_DOUBLE_EQ(plan.improvement(), 1.0);
}

TEST(Planner, ProtectingAStructureShrinksItsDvf) {
  const ProtectionPlanner p = planner();
  const ProtectionPlan base = p.evaluate({0, 0});
  const ProtectionPlan protected_hot = p.evaluate({2, 0});  // chipkill on hot
  EXPECT_LT(protected_hot.choices[0].structure_dvf,
            1e-3 * base.choices[0].structure_dvf);
  // The slowdown slightly raises the unprotected structure's exposure.
  EXPECT_GT(protected_hot.choices[1].structure_dvf,
            base.choices[1].structure_dvf);
  EXPECT_LT(protected_hot.total_dvf, base.total_dvf);
}

TEST(Planner, OverheadWeightedByTrafficShare) {
  const ProtectionPlanner p = planner();
  // chipkill (5% access overhead) on the hot structure: ~4.5% app slowdown;
  // on the cold one: ~0.5%.
  EXPECT_NEAR(p.evaluate({2, 0}).time_overhead, 0.05 * 0.9, 1e-6);
  EXPECT_NEAR(p.evaluate({0, 2}).time_overhead, 0.05 * 0.1, 1e-6);
}

TEST(Planner, OptimizeRespectsTheBudget) {
  const ProtectionPlanner p = planner();
  const ProtectionPlan within = p.optimize(0.01);
  EXPECT_LE(within.time_overhead, 0.01 + 1e-9);
  // 1% budget cannot protect the hot structure (4.5% needed), so the best
  // move is protecting the cold one.
  EXPECT_EQ(within.choices[0].mechanism, "none");
  EXPECT_NE(within.choices[1].mechanism, "none");

  const ProtectionPlan generous = p.optimize(1.0);
  // With an unconstrained budget every structure gets the strongest
  // mechanism.
  EXPECT_EQ(generous.choices[0].mechanism, "chipkill");
  EXPECT_EQ(generous.choices[1].mechanism, "chipkill");
  EXPECT_LT(generous.total_dvf, within.total_dvf);
}

TEST(Planner, OptimizeZeroBudgetIsBaseline) {
  const ProtectionPlanner p = planner();
  const ProtectionPlan plan = p.optimize(0.0);
  EXPECT_EQ(plan.choices[0].mechanism, "none");
  EXPECT_EQ(plan.choices[1].mechanism, "none");
}

TEST(Planner, CheapestMeetingTarget) {
  const ProtectionPlanner p = planner();
  const double baseline = p.evaluate({0, 0}).total_dvf;

  // A target just under the baseline: protecting the cold structure with
  // SECDED should be the cheapest sufficient move.
  const auto modest = p.cheapest_meeting_target(baseline * 0.95);
  ASSERT_TRUE(modest.has_value());
  EXPECT_LE(modest->total_dvf, baseline * 0.95);
  // Among sufficient plans none is cheaper.
  const auto strict = p.cheapest_meeting_target(baseline * 1e-4);
  ASSERT_TRUE(strict.has_value());
  EXPECT_GE(strict->time_overhead, modest->time_overhead);

  // An impossible target.
  EXPECT_FALSE(p.cheapest_meeting_target(baseline * 1e-12).has_value());
}

TEST(Planner, Validation) {
  ModelSpec model = two_structure_model();
  EXPECT_THROW(ProtectionPlanner(Machine::with_cache(caches::profiling_1mb()),
                                 model, {}),
               InvalidArgumentError);
  model.exec_time_seconds.reset();
  EXPECT_THROW(ProtectionPlanner(Machine::with_cache(caches::profiling_1mb()),
                                 model, {ProtectionMechanism::none()}),
               SemanticError);
  const ProtectionPlanner p = planner();
  EXPECT_THROW((void)p.evaluate({0}), InvalidArgumentError);
  EXPECT_THROW((void)p.evaluate({0, 9}), InvalidArgumentError);
  EXPECT_THROW((void)p.optimize(-0.1), InvalidArgumentError);
  EXPECT_THROW((void)p.cheapest_meeting_target(0.0), InvalidArgumentError);
}

TEST(Mechanisms, PresetsMatchTableVIIRatios) {
  EXPECT_NEAR(ProtectionMechanism::secded().fit_factor, 1300.0 / 5000.0,
              1e-12);
  EXPECT_NEAR(ProtectionMechanism::chipkill().fit_factor, 0.02 / 5000.0,
              1e-12);
  EXPECT_DOUBLE_EQ(ProtectionMechanism::none().fit_factor, 1.0);
}

}  // namespace
}  // namespace dvf
