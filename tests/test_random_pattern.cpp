// Unit + property tests for the random-access model (Eqs. 5–7) and the
// IRM/Che extension.
#include "dvf/patterns/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dvf/common/error.hpp"

namespace dvf {
namespace {

CacheConfig cache(std::uint32_t assoc, std::uint32_t sets, std::uint32_t line) {
  return {"test", assoc, sets, line};
}

TEST(ExpectedMissing, ZeroWhenEverythingFits) {
  EXPECT_DOUBLE_EQ(expected_missing_elements(100, 100, 10), 0.0);
  EXPECT_DOUBLE_EQ(expected_missing_elements(100, 200, 10), 0.0);
}

TEST(ExpectedMissing, AllMissingWhenNothingCached) {
  EXPECT_NEAR(expected_missing_elements(100, 0, 10), 10.0, 1e-9);
}

TEST(ExpectedMissing, MatchesClosedFormMean) {
  // X = k - Hypergeometric(N, k, m), so E[X] = k (1 - m/N).
  const std::uint64_t n = 1000;
  const std::uint64_t m = 300;
  const std::uint64_t k = 50;
  EXPECT_NEAR(expected_missing_elements(n, m, k),
              static_cast<double>(k) * (1.0 - 300.0 / 1000.0), 1e-9);
}

TEST(ExpectedMissing, MonotoneInCacheSize) {
  double prev = 1e300;
  for (std::uint64_t m = 0; m <= 1000; m += 100) {
    const double xe = expected_missing_elements(1000, m, 64);
    EXPECT_LE(xe, prev + 1e-12) << "m=" << m;
    prev = xe;
  }
}

TEST(RandomEstimate, CompulsoryOnlyWhenStructureFits) {
  RandomSpec spec;
  spec.element_count = 100;
  spec.element_bytes = 32;  // 3200 B footprint
  spec.visits_per_iteration = 10;
  spec.iterations = 100000;
  const CacheConfig c = cache(4, 64, 32);  // 8 KiB
  EXPECT_DOUBLE_EQ(estimate_random(spec, c), 100.0);  // 3200/32 blocks
}

TEST(RandomEstimate, GrowsLinearlyWithIterationsWhenOverCapacity) {
  RandomSpec spec;
  spec.element_count = 10000;
  spec.element_bytes = 32;  // 320 KB >> 8 KiB
  spec.visits_per_iteration = 50;
  const CacheConfig c = cache(4, 64, 32);
  spec.iterations = 100;
  const double at100 = estimate_random(spec, c);
  spec.iterations = 200;
  const double at200 = estimate_random(spec, c);
  const double compulsory = 10000.0;  // E*N/CL
  EXPECT_NEAR(at200 - compulsory, 2.0 * (at100 - compulsory), 1e-6);
}

TEST(RandomEstimate, ReloadCappedByNonResidentBlocks) {
  // Tiny structure slightly over its cache share: B_out caps the reload.
  RandomSpec spec;
  spec.element_count = 300;
  spec.element_bytes = 32;  // 9600 B vs 8 KiB cache
  spec.visits_per_iteration = 300;
  spec.iterations = 1;
  const CacheConfig c = cache(4, 64, 32);
  const double estimate = estimate_random(spec, c);
  const double b_out = 9600.0 / 32.0 - 256.0;  // 44 blocks not resident
  EXPECT_DOUBLE_EQ(estimate, 300.0 + b_out);
}

TEST(RandomEstimate, CacheRatioShrinksTheShare) {
  RandomSpec spec;
  spec.element_count = 400;
  spec.element_bytes = 32;  // 12.8 KB
  spec.visits_per_iteration = 40;
  spec.iterations = 1000;
  const CacheConfig c = cache(4, 128, 32);  // 16 KiB: fits at ratio 1.0
  spec.cache_ratio = 1.0;
  EXPECT_DOUBLE_EQ(estimate_random(spec, c), 400.0);
  spec.cache_ratio = 0.25;  // share 4 KiB: misses appear
  EXPECT_GT(estimate_random(spec, c), 400.0);
}

TEST(RandomEstimate, RejectsInvalidSpecs) {
  RandomSpec spec;
  const CacheConfig c = cache(4, 64, 32);
  EXPECT_THROW((void)estimate_random(spec, c), InvalidArgumentError);
  spec.element_count = 10;
  spec.cache_ratio = 0.0;
  EXPECT_THROW((void)estimate_random(spec, c), InvalidArgumentError);
  spec.cache_ratio = 1.5;
  EXPECT_THROW((void)estimate_random(spec, c), InvalidArgumentError);
  spec.cache_ratio = 0.5;
  spec.visits_per_iteration = -1.0;
  EXPECT_THROW((void)estimate_random(spec, c), InvalidArgumentError);
}

// ---- IRM / Che extension --------------------------------------------------

TEST(LruIrm, DegenerateCases) {
  const std::vector<double> f = {1.0, 0.5, 0.25};
  EXPECT_DOUBLE_EQ(expected_misses_lru_irm(f, 3), 0.0);
  EXPECT_DOUBLE_EQ(expected_misses_lru_irm(f, 10), 0.0);
  EXPECT_NEAR(expected_misses_lru_irm(f, 0), 1.75, 1e-12);
}

TEST(LruIrm, UniformPopularityMatchesProportionalMissRate) {
  // All elements equally popular: misses/iter ~ k * (1 - m/N).
  const std::size_t n = 1000;
  const double k = 50.0;
  std::vector<double> f(n, k / static_cast<double>(n));
  const double misses = expected_misses_lru_irm(f, 400);
  EXPECT_NEAR(misses, k * (1.0 - 0.4), k * 0.02);
}

TEST(LruIrm, HotElementsAreRetained) {
  // 10 always-visited elements plus 990 rarely visited ones; a cache of 10
  // should absorb nearly all hot traffic.
  std::vector<double> f(1000, 0.001);
  for (int i = 0; i < 10; ++i) {
    f[static_cast<std::size_t>(i)] = 1.0;
  }
  const double misses = expected_misses_lru_irm(f, 10);
  // Hot mass (10/iter) is cached; at most the cold mass (~0.99) misses.
  EXPECT_LT(misses, 1.05);
  EXPECT_GT(misses, 0.5);
}

TEST(LruIrm, MonotoneInCacheSize) {
  std::vector<double> f;
  for (int i = 1; i <= 500; ++i) {
    f.push_back(1.0 / static_cast<double>(i));  // Zipf-ish
  }
  double prev = 1e300;
  for (std::uint64_t m = 0; m <= 500; m += 50) {
    const double misses = expected_misses_lru_irm(f, m);
    EXPECT_LE(misses, prev + 1e-9) << "m=" << m;
    prev = misses;
  }
}

TEST(LruIrm, SkewBeatsUniformAtEqualVisitMass) {
  // Same total visit mass, same cache: skewed popularity must miss less
  // (hot items stay resident).
  const std::size_t n = 1000;
  std::vector<double> uniform(n, 0.05);
  std::vector<double> skewed(n, 0.0);
  double mass = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    skewed[i] = 1.0 / static_cast<double>(1 + i);
    mass += skewed[i];
  }
  for (double& f : skewed) {
    f *= 50.0 / mass;  // normalize to the same 50 visits/iteration
  }
  for (double& f : skewed) {
    f = std::min(f, 1.0);
  }
  EXPECT_LT(expected_misses_lru_irm(skewed, 200),
            expected_misses_lru_irm(uniform, 200));
}

}  // namespace
}  // namespace dvf
