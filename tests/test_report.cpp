// Unit tests for the table/CSV reporter.
#include "dvf/report/table.hpp"

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"

namespace dvf {
namespace {

TEST(Table, BasicLayout) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"}).add_row({"b", "22"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, RejectsMismatchedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgumentError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), InvalidArgumentError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), InvalidArgumentError);
}

TEST(Table, RowAccessIsBoundsChecked) {
  Table t({"a"});
  t.add_row({"x"});
  EXPECT_EQ(t.row(0)[0], "x");
  EXPECT_THROW((void)t.row(1), InvalidArgumentError);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"k", "v"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "multi\nline"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
  EXPECT_EQ(csv.find("plain\""), std::string::npos);
}

TEST(Table, CsvHasHeaderAndRows) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Num, FormatsSignificantDigits) {
  EXPECT_EQ(num(1234.0, 3), "1.23e+03");
  EXPECT_EQ(num(0.5), "0.5");
}

TEST(Banner, WrapsTitle) {
  EXPECT_EQ(banner("hello"), "\n=== hello ===\n");
}

}  // namespace
}  // namespace dvf
