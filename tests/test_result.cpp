// Result<T> / Result<void> semantics, the error taxonomy's exception
// mapping, and the EvalBudget resource guardrails (docs/resilience.md
// "Error taxonomy & totality").
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "dvf/common/budget.hpp"
#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/result.hpp"

namespace dvf {
namespace {

TEST(Result, HoldsValue) {
  Result<double> r(3.5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_DOUBLE_EQ(r.value(), 3.5);
  EXPECT_DOUBLE_EQ(*r, 3.5);
  EXPECT_DOUBLE_EQ(r.value_or(-1.0), 3.5);
}

TEST(Result, HoldsError) {
  Result<double> r(EvalError{ErrorKind::kOverflow, "boom"});
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.error().kind, ErrorKind::kOverflow);
  EXPECT_EQ(r.error().message, "boom");
  EXPECT_DOUBLE_EQ(r.value_or(-1.0), -1.0);
}

TEST(Result, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = *std::move(r);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

TEST(Result, ValueOrThrowMapsDomainErrorToInvalidArgument) {
  EXPECT_THROW(
      Result<double>(EvalError{ErrorKind::kDomainError, "bad spec"})
          .value_or_throw(),
      InvalidArgumentError);
}

TEST(Result, ValueOrThrowMapsOtherKindsToEvaluationError) {
  for (const ErrorKind kind :
       {ErrorKind::kOverflow, ErrorKind::kNonFinite, ErrorKind::kResourceLimit,
        ErrorKind::kDeadlineExceeded}) {
    try {
      Result<double>(EvalError{kind, "x"}).value_or_throw();
      FAIL() << "expected EvaluationError for kind " << to_string(kind);
    } catch (const EvaluationError& err) {
      EXPECT_EQ(err.kind(), kind);
      EXPECT_NE(std::string(err.what()).find(to_string(kind)),
                std::string::npos);
    }
  }
}

TEST(Result, VoidSuccessAndError) {
  Result<void> ok_result;
  EXPECT_TRUE(ok_result.ok());
  std::move(ok_result).value_or_throw();  // must not throw

  Result<void> err(EvalError{ErrorKind::kResourceLimit, "cap"});
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.error().kind, ErrorKind::kResourceLimit);
  EXPECT_THROW(std::move(err).value_or_throw(), EvaluationError);
}

TEST(Result, ErrorKindLabelsAreStable) {
  EXPECT_STREQ(to_string(ErrorKind::kDomainError), "domain_error");
  EXPECT_STREQ(to_string(ErrorKind::kOverflow), "overflow");
  EXPECT_STREQ(to_string(ErrorKind::kNonFinite), "non_finite");
  EXPECT_STREQ(to_string(ErrorKind::kResourceLimit), "resource_limit");
  EXPECT_STREQ(to_string(ErrorKind::kDeadlineExceeded), "deadline_exceeded");
}

TEST(Result, DescribePrefixesKind) {
  const EvalError err{ErrorKind::kNonFinite, "streaming produced NaN"};
  EXPECT_EQ(err.describe(), "non_finite: streaming produced NaN");
}

TEST(FiniteOrError, PassesFiniteClassifiesInfAndNan) {
  EXPECT_TRUE(finite_or_error(0.0, "x").ok());
  EXPECT_TRUE(finite_or_error(-1e308, "x").ok());

  const auto inf = finite_or_error(std::numeric_limits<double>::infinity(), "q");
  ASSERT_FALSE(inf.ok());
  EXPECT_EQ(inf.error().kind, ErrorKind::kOverflow);

  const auto ninf =
      finite_or_error(-std::numeric_limits<double>::infinity(), "q");
  ASSERT_FALSE(ninf.ok());
  EXPECT_EQ(ninf.error().kind, ErrorKind::kOverflow);
  EXPECT_NE(ninf.error().message.find("-inf"), std::string::npos);

  const auto nan = finite_or_error(std::nan(""), "q");
  ASSERT_FALSE(nan.ok());
  EXPECT_EQ(nan.error().kind, ErrorKind::kNonFinite);
}

TEST(EvalBudget, ReferencesAccumulateToTheCap) {
  EvalLimits limits;
  limits.max_references = 100;
  EvalBudget budget(limits);

  EXPECT_TRUE(budget.charge_references(60).ok());
  EXPECT_TRUE(budget.charge_references(40).ok());
  EXPECT_EQ(budget.references_used(), 100u);

  const auto over = budget.charge_references(1);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.error().kind, ErrorKind::kResourceLimit);
}

TEST(EvalBudget, ExpansionCapIsIndependent) {
  EvalLimits limits;
  limits.max_references = 10;
  limits.max_expansion = 5;
  EvalBudget budget(limits);

  EXPECT_TRUE(budget.charge_expansion(5).ok());
  const auto over = budget.charge_expansion(1);
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.error().kind, ErrorKind::kResourceLimit);
  // The reference meter is untouched by expansion charges.
  EXPECT_TRUE(budget.charge_references(10).ok());
}

TEST(EvalBudget, ZeroLimitDisablesTheCap) {
  EvalLimits limits;
  limits.max_references = 0;
  limits.max_expansion = 0;
  EvalBudget budget(limits);
  EXPECT_TRUE(budget.charge_references(~std::uint64_t{0}).ok());
  EXPECT_TRUE(budget.charge_expansion(~std::uint64_t{0}).ok());
}

TEST(EvalBudget, ResetClearsMetersAndRecovers) {
  EvalLimits limits;
  limits.max_references = 10;
  EvalBudget budget(limits);
  EXPECT_TRUE(budget.charge_references(10).ok());
  EXPECT_FALSE(budget.charge_references(1).ok());

  budget.reset();
  EXPECT_EQ(budget.references_used(), 0u);
  EXPECT_TRUE(budget.charge_references(10).ok());
}

TEST(EvalBudget, DeadlineFiresAfterWallClockPasses) {
  EvalLimits limits;
  limits.wall_seconds = 0.02;  // armed by the constructor
  EvalBudget budget(limits);
  EXPECT_TRUE(budget.check_deadline().ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  const auto late = budget.check_deadline();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.error().kind, ErrorKind::kDeadlineExceeded);

  // reset() re-arms from "now", so the budget becomes usable again.
  budget.reset();
  EXPECT_TRUE(budget.check_deadline().ok());
}

TEST(EvalBudget, NoDeadlineMeansCheckAlwaysPasses) {
  EvalBudget budget;  // default limits: wall_seconds == 0
  EXPECT_TRUE(budget.check_deadline().ok());
}

TEST(EvalBudget, NullPointerFallsBackToProcessDefault) {
  EvalBudget& fallback = budget_or_default(nullptr);
  EXPECT_EQ(&fallback, &EvalBudget::process_default());

  EvalBudget mine;
  EXPECT_EQ(&budget_or_default(&mine), &mine);
}

TEST(EvalBudget, ProcessDefaultMetersPerCharge) {
  // The shared default budget must not accumulate across unrelated
  // evaluations: charging near the cap twice succeeds, one oversized charge
  // fails.
  EvalBudget& shared = EvalBudget::process_default();
  const std::uint64_t cap = shared.limits().max_references;
  EXPECT_TRUE(shared.charge_references(cap).ok());
  EXPECT_TRUE(shared.charge_references(cap).ok());
  EXPECT_FALSE(shared.charge_references(cap + 1).ok());
}

TEST(SaturatingMath, MulClampsInsteadOfWrapping) {
  EXPECT_EQ(math::saturating_mul(0, ~std::uint64_t{0}), 0u);
  EXPECT_EQ(math::saturating_mul(1u << 16, 1u << 16), std::uint64_t{1} << 32);
  EXPECT_EQ(math::saturating_mul(std::uint64_t{1} << 32, std::uint64_t{1} << 32),
            ~std::uint64_t{0});
  EXPECT_EQ(math::saturating_mul(~std::uint64_t{0}, 2), ~std::uint64_t{0});
}

TEST(SaturatingMath, AddClampsInsteadOfWrapping) {
  EXPECT_EQ(math::saturating_add(1, 2), 3u);
  EXPECT_EQ(math::saturating_add(~std::uint64_t{0}, 1), ~std::uint64_t{0});
  EXPECT_EQ(math::saturating_add(~std::uint64_t{0} - 1, 1), ~std::uint64_t{0});
}

TEST(SaturatingMath, CeilDivNeverWraps) {
  EXPECT_EQ(math::ceil_div(0, 64), 0u);
  EXPECT_EQ(math::ceil_div(1, 64), 1u);
  EXPECT_EQ(math::ceil_div(64, 64), 1u);
  EXPECT_EQ(math::ceil_div(65, 64), 2u);
  // The classic (a + b - 1) / b formulation wraps here; ours must not.
  EXPECT_EQ(math::ceil_div(~std::uint64_t{0}, 2),
            (std::uint64_t{1} << 63));
}

}  // namespace
}  // namespace dvf
