// Unit + property tests for the data-reuse model (Eqs. 8–15) and the
// occupancy/scenario variants.
#include "dvf/patterns/reuse.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "dvf/common/error.hpp"

namespace dvf {
namespace {

CacheConfig small() { return {"small", 4, 64, 32}; }

double total_mass(const std::vector<double>& dist) {
  return std::accumulate(dist.begin(), dist.end(), 0.0);
}

TEST(OccupancyDistribution, IsAPmfWithCorrectSupport) {
  for (const std::uint64_t blocks : {0ULL, 1ULL, 64ULL, 300ULL, 100000ULL}) {
    const auto dist = set_occupancy_distribution(blocks, small());
    ASSERT_EQ(dist.size(), 5u);  // 0..CA
    EXPECT_NEAR(total_mass(dist), 1.0, 1e-9) << blocks;
    for (const double p : dist) {
      EXPECT_GE(p, 0.0);
    }
  }
}

TEST(OccupancyDistribution, ZeroBlocksLeaveEmptySets) {
  const auto dist = set_occupancy_distribution(0, small());
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
  EXPECT_DOUBLE_EQ(expected_occupancy(dist), 0.0);
}

TEST(OccupancyDistribution, HugeStructureSaturatesEverySet) {
  const auto dist = set_occupancy_distribution(1000000, small());
  EXPECT_NEAR(dist[4], 1.0, 1e-9);
  EXPECT_NEAR(expected_occupancy(dist), 4.0, 1e-9);
}

TEST(OccupancyDistribution, MeanMatchesUncappedBinomialWhenFarFromCap) {
  // 64 blocks over 64 sets: mean 1, far below CA=4 — expectation ~ F/NA.
  const auto dist = set_occupancy_distribution(64, small());
  EXPECT_NEAR(expected_occupancy(dist), 1.0, 0.01);
}

TEST(ContiguousOccupancy, ExactTwoPointDistribution) {
  // 150 blocks over 64 sets: 22 sets hold 3, 42 hold 2.
  const auto dist = set_occupancy_contiguous(150, small());
  EXPECT_NEAR(dist[2], 42.0 / 64.0, 1e-12);
  EXPECT_NEAR(dist[3], 22.0 / 64.0, 1e-12);
  EXPECT_NEAR(total_mass(dist), 1.0, 1e-12);
  EXPECT_NEAR(expected_occupancy(dist) * 64.0, 150.0, 1e-9);
}

TEST(ContiguousOccupancy, CapsAtAssociativity) {
  const auto dist = set_occupancy_contiguous(1000, small());
  EXPECT_DOUBLE_EQ(dist[4], 1.0);
}

TEST(SurvivorDistribution, NoInterfererMeansNoLoss) {
  for (const auto occupancy : {ReuseOccupancy::kBernoulli,
                               ReuseOccupancy::kContiguous}) {
    const auto base = occupancy == ReuseOccupancy::kContiguous
                          ? set_occupancy_contiguous(100, small())
                          : set_occupancy_distribution(100, small());
    const auto survived = survivor_distribution(
        100, 0, small(), ReuseScenario::kLruProtects, occupancy);
    EXPECT_NEAR(expected_occupancy(survived), expected_occupancy(base), 1e-9);
  }
}

TEST(SurvivorDistribution, HeavyInterferenceEvictsUnderLru) {
  // Interferer saturates every set: under Eq. 11 the target keeps nothing.
  const auto survived = survivor_distribution(
      100, 1000000, small(), ReuseScenario::kLruProtects,
      ReuseOccupancy::kContiguous);
  EXPECT_NEAR(expected_occupancy(survived), 0.0, 1e-9);
}

TEST(SurvivorDistribution, ScenariosAreOrderedUnderModerateInterference) {
  // With a same-size interferer, uniform eviction strikes the target while
  // LRU protection spares it; blend sits between.
  const double lru = expected_occupancy(survivor_distribution(
      128, 128, small(), ReuseScenario::kLruProtects));
  const double uniform = expected_occupancy(survivor_distribution(
      128, 128, small(), ReuseScenario::kUniformEviction));
  const double blend = expected_occupancy(survivor_distribution(
      128, 128, small(), ReuseScenario::kBlend));
  EXPECT_GT(lru, uniform);
  EXPECT_NEAR(blend, 0.5 * (lru + uniform), 1e-9);
}

TEST(SurvivorDistribution, AlwaysAPmf) {
  for (const auto scenario : {ReuseScenario::kLruProtects,
                              ReuseScenario::kUniformEviction,
                              ReuseScenario::kBlend}) {
    for (const std::uint64_t fb : {0ULL, 50ULL, 256ULL, 5000ULL}) {
      const auto dist = survivor_distribution(120, fb, small(), scenario);
      EXPECT_NEAR(total_mass(dist), 1.0, 1e-6)
          << "fb=" << fb << " scenario=" << static_cast<int>(scenario);
    }
  }
}

TEST(ReuseEstimate, FittingStructureLoadsOnce) {
  ReuseSpec spec;
  spec.self_bytes = 2048;   // 64 blocks
  spec.other_bytes = 1024;  // 32 blocks: together well under 256
  spec.reuse_rounds = 50;
  spec.occupancy = ReuseOccupancy::kContiguous;
  EXPECT_NEAR(estimate_reuse(spec, small()), 64.0, 1e-6);
}

TEST(ReuseEstimate, OverwhelmedStructureReloadsEveryRound) {
  ReuseSpec spec;
  spec.self_bytes = 32 * 300;     // 300 blocks > 256-block cache
  spec.other_bytes = 32 * 10000;  // saturating interference
  spec.reuse_rounds = 10;
  spec.occupancy = ReuseOccupancy::kContiguous;
  EXPECT_NEAR(estimate_reuse(spec, small()), 300.0 * 11.0, 1e-6);
}

TEST(ReuseEstimate, MonotoneInInterfererSize) {
  ReuseSpec spec;
  spec.self_bytes = 32 * 128;
  spec.reuse_rounds = 20;
  double prev = -1.0;
  for (const std::uint64_t other : {0ULL, 1024ULL, 4096ULL, 16384ULL,
                                    1048576ULL}) {
    spec.other_bytes = other;
    const double estimate = estimate_reuse(spec, small());
    EXPECT_GE(estimate, prev - 1e-9) << "other=" << other;
    prev = estimate;
  }
}

TEST(ReuseEstimate, MonotoneInRounds) {
  ReuseSpec spec;
  spec.self_bytes = 32 * 300;
  spec.other_bytes = 32 * 300;
  double prev = 0.0;
  for (const std::uint64_t rounds : {1ULL, 2ULL, 8ULL, 64ULL}) {
    spec.reuse_rounds = rounds;
    const double estimate = estimate_reuse(spec, small());
    EXPECT_GT(estimate, prev) << "rounds=" << rounds;
    prev = estimate;
  }
}

TEST(ReuseEstimate, RejectsEmptyTarget) {
  ReuseSpec spec;
  EXPECT_THROW((void)estimate_reuse(spec, small()), InvalidArgumentError);
}

}  // namespace
}  // namespace dvf
