// Unit tests for the deterministic RNG substrate.
#include "dvf/common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dvf {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, Deterministic) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(123);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Xoshiro256, BelowRespectsBound) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.below(17);
    ASSERT_LT(v, 17u);
    seen.insert(v);
  }
  // All 17 values should appear over 10k draws.
  EXPECT_EQ(seen.size(), 17u);
}

TEST(Xoshiro256, NoShortCycle) {
  Xoshiro256 rng(9);
  const std::uint64_t first = rng();
  for (int i = 0; i < 100000; ++i) {
    ASSERT_NE(rng(), first) << "cycle at " << i;
  }
}

}  // namespace
}  // namespace dvf
