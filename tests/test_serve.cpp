// The serve subsystem: JSON decoder totality, wire protocol, compiled-model
// cache, engine semantics (including the cache-hits-skip-the-front-end
// guarantee), the socket server, and the chaos harness the ISSUE's
// acceptance criteria name — malformed frames, expansion bombs, deadline
// storms and mid-request disconnects must produce typed errors, bounded
// memory, and zero crashes.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "dvf/obs/obs.hpp"
#include "dvf/serve/cache.hpp"
#include "dvf/serve/engine.hpp"
#include "dvf/serve/json.hpp"
#include "dvf/serve/protocol.hpp"
#include "dvf/serve/server.hpp"

namespace {

using namespace dvf::serve;

// ---- JSON decoder ---------------------------------------------------------

TEST(ServeJson, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").value.is_null());
  EXPECT_TRUE(parse_json("true").value.boolean);
  EXPECT_FALSE(parse_json("false").value.boolean);
  EXPECT_DOUBLE_EQ(parse_json("-12.5e2").value.number, -1250.0);
  EXPECT_EQ(parse_json("\"hi\\n\\u0041\"").value.string, "hi\nA");
}

TEST(ServeJson, ParsesNestedStructures) {
  const JsonParsed parsed =
      parse_json(R"({"a":[1,2,{"b":"c"}],"d":{"e":null}})");
  ASSERT_TRUE(parsed.ok);
  const JsonValue* a = parsed.value.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[2].find("b")->string, "c");
}

TEST(ServeJson, SurrogatePairsDecodeToUtf8) {
  const JsonParsed parsed = parse_json("\"\\ud83d\\ude00\"");  // 😀
  ASSERT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.value.string, "\xF0\x9F\x98\x80");
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json("").ok);
  EXPECT_FALSE(parse_json("{").ok);
  EXPECT_FALSE(parse_json("{}extra").ok);
  EXPECT_FALSE(parse_json("\"unterminated").ok);
  EXPECT_FALSE(parse_json("01").ok);
  EXPECT_FALSE(parse_json("+1").ok);
  EXPECT_FALSE(parse_json("nul").ok);
  EXPECT_FALSE(parse_json("\"\\ud800\"").ok);  // lone surrogate
}

TEST(ServeJson, DepthCapStopsNestingBombs) {
  const std::string bomb(10000, '[');
  const JsonParsed parsed = parse_json(bomb);
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("depth"), std::string::npos);
  // A balanced-but-deep document is equally rejected.
  EXPECT_FALSE(parse_json(std::string(65, '[') + std::string(65, ']')).ok);
  // At or under the cap it parses.
  EXPECT_TRUE(parse_json(std::string(64, '[') + std::string(64, ']')).ok);
}

TEST(ServeJson, DuplicateKeysKeepLastOccurrence) {
  const JsonParsed parsed = parse_json(R"({"op":"ping","op":"metrics"})");
  ASSERT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.value.find("op")->string, "metrics");
}

TEST(ServeJson, EncodersRoundTrip) {
  EXPECT_EQ(json_escape_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
  EXPECT_EQ(json_number(0.5), "0.5");
  const double nan = std::nan("");
  EXPECT_EQ(json_number(nan), "null");
  const std::string encoded = json_number(0.1 + 0.2);
  EXPECT_DOUBLE_EQ(parse_json(encoded).value.number, 0.1 + 0.2);
}

// ---- wire protocol --------------------------------------------------------

TEST(ServeProtocol, ParsesFullRequest) {
  const RequestParse parsed = parse_request(
      R"({"id":"r1","op":"eval","source":"model \"m\" {}","model":"m",)"
      R"("machine":"laptop","deadline_s":1.5,"exec_time_s":0.25})");
  ASSERT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.request.id_json, "\"r1\"");
  EXPECT_EQ(parsed.request.op, "eval");
  EXPECT_EQ(parsed.request.model, "m");
  EXPECT_EQ(parsed.request.machine, "laptop");
  EXPECT_DOUBLE_EQ(parsed.request.deadline_s, 1.5);
  ASSERT_TRUE(parsed.request.exec_time_s.has_value());
  EXPECT_DOUBLE_EQ(*parsed.request.exec_time_s, 0.25);
}

TEST(ServeProtocol, RecoversIdBeforeRejecting) {
  // The id parsed, a later field did not: the rejection still correlates.
  const RequestParse parsed =
      parse_request(R"({"id":42,"op":"eval","source":123})");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.id_json, "42");
  EXPECT_EQ(parsed.kind, wire::kBadRequest);
}

TEST(ServeProtocol, RejectsNonScalarId) {
  const RequestParse parsed = parse_request(R"({"id":[1],"op":"ping"})");
  EXPECT_FALSE(parsed.ok);
  EXPECT_EQ(parsed.id_json, "null");
}

TEST(ServeProtocol, RejectsUnknownOpAndMissingBody) {
  EXPECT_EQ(parse_request(R"({"op":"restart"})").kind, wire::kBadRequest);
  EXPECT_EQ(parse_request(R"({"op":"eval"})").kind, wire::kBadRequest);
  EXPECT_EQ(parse_request("[]").kind, wire::kBadRequest);
  EXPECT_EQ(parse_request("{").kind, wire::kParseError);
}

TEST(ServeProtocol, HashRoundTrip) {
  EXPECT_EQ(hash_hex(0xdeadbeefULL), "0x00000000deadbeef");
  EXPECT_EQ(parse_hash_hex("0x00000000deadbeef").value(), 0xdeadbeefULL);
  EXPECT_EQ(parse_hash_hex("ff").value(), 0xffULL);
  EXPECT_FALSE(parse_hash_hex("").has_value());
  EXPECT_FALSE(parse_hash_hex("0x").has_value());
  EXPECT_FALSE(parse_hash_hex("xyz").has_value());
  EXPECT_FALSE(parse_hash_hex("0x11111111111111111").has_value());
}

TEST(ServeProtocol, ErrorResponseShape) {
  const std::string plain = error_response("7", wire::kBadRequest, "nope");
  EXPECT_EQ(plain,
            R"({"id":7,"ok":false,"error":{"kind":"bad_request",)"
            R"("message":"nope"}})");
  const std::string hinted =
      error_response("null", wire::kOverloaded, "busy", 250);
  EXPECT_NE(hinted.find("\"retry_after_ms\":250"), std::string::npos);
}

// ---- compiled-model cache -------------------------------------------------

std::shared_ptr<CompiledEntry> make_entry(const std::string& source,
                                          std::uint64_t canonical_hash) {
  auto entry = std::make_shared<CompiledEntry>();
  entry->source = source;
  entry->source_fingerprint = fnv1a64(source);
  entry->canonical_hash = canonical_hash;
  return entry;
}

TEST(ServeCache, HitMissAndCounters) {
  CompiledModelCache cache(4);
  EXPECT_EQ(cache.find_source("s1"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(make_entry("s1", 0x11));
  const auto hit = cache.find_source("s1");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->canonical_hash, 0x11u);
  EXPECT_EQ(cache.hits(), 1u);
  const auto by_hash = cache.find_hash(0x11);
  ASSERT_NE(by_hash, nullptr);
  EXPECT_EQ(by_hash->source, "s1");
  EXPECT_EQ(cache.find_hash(0x99), nullptr);
}

TEST(ServeCache, LruEvictionIsBoundedAndCounted) {
  CompiledModelCache cache(2);
  cache.insert(make_entry("a", 1));
  cache.insert(make_entry("b", 2));
  ASSERT_NE(cache.find_source("a"), nullptr);  // refresh: b is now LRU
  cache.insert(make_entry("c", 3));            // evicts b
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find_source("b"), nullptr);
  EXPECT_NE(cache.find_source("a"), nullptr);
  EXPECT_NE(cache.find_source("c"), nullptr);
  EXPECT_EQ(cache.find_hash(2), nullptr);  // hash index follows eviction
}

TEST(ServeCache, ConcurrentInsertKeepsFirstEntry) {
  CompiledModelCache cache(4);
  const auto first = make_entry("same", 7);
  const auto second = make_entry("same", 7);
  EXPECT_EQ(cache.insert(first), first);
  EXPECT_EQ(cache.insert(second), first);  // existing entry wins
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ServeCache, CapacityZeroDisablesCaching) {
  CompiledModelCache cache(0);
  const auto entry = make_entry("s", 1);
  EXPECT_EQ(cache.insert(entry), entry);
  EXPECT_EQ(cache.find_source("s"), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// ---- engine ---------------------------------------------------------------

constexpr const char* kModelSource =
    "param n = 64;\n"
    "model \"m\" {\n"
    "  time 0.5;\n"
    "  data A { elements n; element_size 8; }\n"
    "  pattern A stream { stride 1; repeat 4; }\n"
    "}\n";

std::string eval_frame(const std::string& id, const std::string& source) {
  return "{\"id\":" + id +
         ",\"op\":\"eval\",\"source\":" + json_escape_string(source) + "}";
}

JsonParsed expect_response(const std::string& response) {
  const JsonParsed parsed = parse_json(response);
  EXPECT_TRUE(parsed.ok) << response;
  EXPECT_TRUE(parsed.value.is_object()) << response;
  return parsed;
}

std::string error_kind(const JsonParsed& response) {
  const JsonValue* error = response.value.find("error");
  if (error == nullptr || error->find("kind") == nullptr) {
    return "";
  }
  return error->find("kind")->string;
}

TEST(ServeEngine, PingAndBlankLines) {
  Engine engine;
  EXPECT_EQ(engine.handle_line("{\"id\":1,\"op\":\"ping\"}"),
            "{\"id\":1,\"ok\":true,\"op\":\"ping\"}");
  EXPECT_EQ(engine.handle_line(""), "");
  EXPECT_EQ(engine.handle_line("   \t\r"), "");
}

TEST(ServeEngine, EvalMissThenHitIsBitIdentical) {
  Engine engine;
  const JsonParsed miss =
      expect_response(engine.handle_line(eval_frame("1", kModelSource)));
  const JsonParsed hit =
      expect_response(engine.handle_line(eval_frame("2", kModelSource)));
  EXPECT_TRUE(miss.value.find("ok")->boolean);
  EXPECT_TRUE(hit.value.find("ok")->boolean);
  EXPECT_EQ(miss.value.find("cache")->string, "miss");
  EXPECT_EQ(hit.value.find("cache")->string, "hit");
  EXPECT_EQ(miss.value.find("hash")->string, hit.value.find("hash")->string);
  // Same totals, same structures — the cached program is the same program.
  const JsonValue& r0 = miss.value.find("results")->array.at(0);
  const JsonValue& r1 = hit.value.find("results")->array.at(0);
  EXPECT_EQ(r0.find("total")->number, r1.find("total")->number);
  EXPECT_EQ(engine.cache().hits(), 1u);
}

// The acceptance criterion: a cache hit provably skips lex/parse/analyze —
// no dsl.* span is recorded on the hit path.
TEST(ServeEngine, CacheHitSkipsDslFrontEnd) {
  dvf::obs::reset();
  dvf::obs::set_enabled(true);
  Engine engine;
  (void)engine.handle_line(eval_frame("1", kModelSource));
  std::size_t miss_dsl_spans = 0;
  for (const dvf::obs::SpanRecord& span : dvf::obs::snapshot_spans()) {
    if (std::string_view(span.name).substr(0, 4) == "dsl.") {
      ++miss_dsl_spans;
    }
  }
  EXPECT_GT(miss_dsl_spans, 0u) << "miss path must run the front end";

  dvf::obs::drop_spans();
  const JsonParsed hit =
      expect_response(engine.handle_line(eval_frame("2", kModelSource)));
  EXPECT_EQ(hit.value.find("cache")->string, "hit");
  for (const dvf::obs::SpanRecord& span : dvf::obs::snapshot_spans()) {
    EXPECT_NE(std::string_view(span.name).substr(0, 4), "dsl.")
        << "hit path ran front-end stage " << span.name;
  }
  dvf::obs::set_enabled(false);
  dvf::obs::reset();
}

TEST(ServeEngine, HashOnlyRequestsReuseTheCache) {
  Engine engine;
  const JsonParsed first =
      expect_response(engine.handle_line(eval_frame("1", kModelSource)));
  const std::string hash = first.value.find("hash")->string;
  const JsonParsed second = expect_response(engine.handle_line(
      "{\"id\":2,\"op\":\"eval\",\"hash\":\"" + hash + "\"}"));
  ASSERT_TRUE(second.value.find("ok")->boolean);
  EXPECT_EQ(second.value.find("cache")->string, "hit");
  EXPECT_EQ(second.value.find("results")->array.at(0).find("total")->number,
            first.value.find("results")->array.at(0).find("total")->number);

  const JsonParsed unknown = expect_response(engine.handle_line(
      R"({"id":3,"op":"eval","hash":"0x1234567812345678"})"));
  EXPECT_FALSE(unknown.value.find("ok")->boolean);
  EXPECT_EQ(error_kind(unknown), wire::kUnknownHash);
}

TEST(ServeEngine, TypedErrorsForBadInput) {
  Engine engine;
  EXPECT_EQ(error_kind(expect_response(engine.handle_line("garbage"))),
            wire::kParseError);
  EXPECT_EQ(error_kind(expect_response(
                engine.handle_line(R"({"op":"eval","source":"model"})"))),
            wire::kModelError);
  EXPECT_EQ(error_kind(expect_response(engine.handle_line(
                eval_frame("1", "param n = 1; model \"m\" { time x; }")))),
            wire::kModelError);
  const std::string unknown_model =
      "{\"id\":1,\"op\":\"eval\",\"source\":" +
      json_escape_string(kModelSource) + ",\"model\":\"ghost\"}";
  EXPECT_EQ(error_kind(expect_response(engine.handle_line(unknown_model))),
            wire::kBadRequest);
  const std::string unknown_machine =
      "{\"id\":1,\"op\":\"eval\",\"source\":" +
      json_escape_string(kModelSource) + ",\"machine\":\"ghost\"}";
  EXPECT_EQ(error_kind(expect_response(engine.handle_line(unknown_machine))),
            wire::kBadRequest);
}

TEST(ServeEngine, OversizedFrameIsTooLarge) {
  EngineConfig config;
  config.max_request_bytes = 256;
  Engine engine(config);
  const JsonParsed response =
      expect_response(engine.handle_line(std::string(257, 'x')));
  EXPECT_EQ(error_kind(response), wire::kTooLarge);
}

TEST(ServeEngine, ExpansionBombDegradesToTypedError) {
  EngineConfig config;
  config.max_expansion = 1 << 12;
  config.max_references = 1 << 16;
  Engine engine(config);
  const std::string bomb =
      "model \"bomb\" {\n"
      "  time 1;\n"
      "  data T { elements 100000; element_size 8; }\n"
      "  pattern T template { start (0); step 1; count 100000; }\n"
      "}\n";
  const JsonParsed response =
      expect_response(engine.handle_line(eval_frame("1", bomb)));
  EXPECT_FALSE(response.value.find("ok")->boolean);
  EXPECT_EQ(error_kind(response), "resource_limit");
}

TEST(ServeEngine, MetricsOpReportsCacheCounters) {
  Engine engine;
  (void)engine.handle_line(eval_frame("1", kModelSource));
  (void)engine.handle_line(eval_frame("2", kModelSource));
  const JsonParsed response = expect_response(
      engine.handle_line(R"({"id":"m","op":"metrics"})"));
  ASSERT_TRUE(response.value.find("ok")->boolean);
  const JsonValue* serve = response.value.find("serve");
  ASSERT_NE(serve, nullptr);
  const JsonValue* cache = serve->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_DOUBLE_EQ(cache->find("hits")->number, 1.0);
  EXPECT_DOUBLE_EQ(cache->find("misses")->number, 1.0);
  EXPECT_DOUBLE_EQ(serve->find("requests")->number, 3.0);
}

TEST(ServeEngine, DrainWindowCapsAndThenRejects) {
  Engine engine;
  engine.begin_drain(0.001);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const JsonParsed response =
      expect_response(engine.handle_line(eval_frame("1", kModelSource)));
  EXPECT_FALSE(response.value.find("ok")->boolean);
  EXPECT_EQ(error_kind(response), "deadline_exceeded");
}

// ---- chaos harness --------------------------------------------------------

// Deadline storm: concurrent requests with microscopic deadlines against
// heavyweight models, mixed with garbage — every frame gets a well-formed
// typed response, the engine survives, request accounting stays exact.
TEST(ServeChaos, ConcurrentStormYieldsTypedResponsesOnly) {
  EngineConfig config;
  config.max_expansion = 1 << 14;
  config.max_references = 1 << 18;
  config.cache_capacity = 4;
  Engine engine(config);

  const std::string heavy =
      "model \"h\" {\n"
      "  time 1;\n"
      "  data T { elements 1048576; element_size 8; }\n"
      "  pattern T template { start (0); step 1; count 1048576; }\n"
      "}\n";
  const std::vector<std::string> frames = {
      eval_frame("1", kModelSource),
      "{\"id\":2,\"op\":\"eval\",\"source\":" + json_escape_string(heavy) +
          ",\"deadline_s\":0.001}",
      eval_frame("3", heavy),
      "{{{{{",
      R"({"op":"restart"})",
      std::string(100, '['),
      R"({"id":4,"op":"ping"})",
  };

  constexpr unsigned kThreads = 8;
  constexpr unsigned kPerThread = 40;
  std::atomic<unsigned> malformed{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (unsigned i = 0; i < kPerThread; ++i) {
        const std::string& frame = frames[(t + i) % frames.size()];
        const std::string response = engine.handle_line(frame);
        const JsonParsed parsed = parse_json(response);
        if (!parsed.ok || !parsed.value.is_object() ||
            parsed.value.find("ok") == nullptr ||
            !parsed.value.find("ok")->is_bool()) {
          malformed.fetch_add(1);
          continue;
        }
        if (!parsed.value.find("ok")->boolean &&
            error_kind(parsed) == wire::kInternal) {
          malformed.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(malformed.load(), 0u);
  EXPECT_EQ(engine.requests_handled(), kThreads * kPerThread);
  EXPECT_EQ(engine.responses_ok() + engine.responses_error(),
            kThreads * kPerThread);
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_LE(engine.cache().size(), 4u);  // bounded memory
}

// cancel_in_flight stops a long evaluation from another thread.
TEST(ServeChaos, CancelInFlightStopsLongEvaluations) {
  EngineConfig config;
  config.default_deadline_s = 30.0;  // only the cancel can stop it quickly
  config.max_deadline_s = 30.0;
  config.max_references = 0;
  config.max_expansion = std::uint64_t{1} << 23;
  Engine engine(config);
  const std::string slow =
      "model \"slow\" {\n"
      "  time 1;\n"
      "  data T { elements 4194304; element_size 8; }\n"
      "  pattern T template { start (0); step 1; count 4194303; }\n"
      "}\n";

  std::string response;
  std::thread request([&] {
    response = engine.handle_line(eval_frame("1", slow));
  });
  // Wait until the request is actually in flight, then cancel it.
  for (int i = 0; i < 1000 && engine.in_flight() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine.cancel_in_flight();
  request.join();
  const JsonParsed parsed = expect_response(response);
  if (!parsed.value.find("ok")->boolean) {
    EXPECT_EQ(error_kind(parsed), "deadline_exceeded");
  }
  // Either way the engine is intact and request-scoped state is gone.
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_TRUE(expect_response(
                  engine.handle_line(R"({"id":2,"op":"ping"})"))
                  .value.find("ok")
                  ->boolean);
}

// ---- socket server --------------------------------------------------------

class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = "/tmp/dvf_serve_test_" + std::to_string(getpid()) + "_" +
                   std::to_string(counter_++) + ".sock";
    ServerConfig config;
    config.socket_path = socket_path_;
    config.workers = 2;
    config.queue_capacity = 16;
    config.drain_grace_s = 2.0;
    server_ = std::make_unique<Server>(config);
    thread_ = std::thread([this] { exit_code_ = server_->run(); });
    // Wait for the listener.
    for (int i = 0; i < 1000 && connect_once() < 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }

  void TearDown() override {
    server_->request_stop();
    thread_.join();
    EXPECT_EQ(exit_code_, 0);
    unlink(socket_path_.c_str());
  }

  int connect_once() {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    struct sockaddr_un addr = {};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s",
                  socket_path_.c_str());
    if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof addr) != 0) {
      close(fd);
      return -1;
    }
    return fd;
  }

  /// Sends `lines` and reads until `expected` newline-terminated responses
  /// arrived (or 5 s passed).
  std::vector<std::string> roundtrip(const std::string& payload,
                                     std::size_t expected) {
    const int fd = connect_once();
    EXPECT_GE(fd, 0);
    EXPECT_EQ(::write(fd, payload.data(), payload.size()),
              static_cast<ssize_t>(payload.size()));
    std::string buffer;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (std::chrono::steady_clock::now() < deadline) {
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n <= 0) {
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(
              std::count(buffer.begin(), buffer.end(), '\n')) >= expected) {
        break;
      }
    }
    close(fd);
    std::vector<std::string> lines;
    std::size_t begin = 0;
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      if (buffer[i] == '\n') {
        lines.push_back(buffer.substr(begin, i - begin));
        begin = i + 1;
      }
    }
    return lines;
  }

  static inline std::atomic<int> counter_{0};
  std::string socket_path_;
  std::unique_ptr<Server> server_;
  std::thread thread_;
  int exit_code_ = -1;
};

TEST_F(ServerFixture, AnswersOverTheSocket) {
  const std::vector<std::string> responses = roundtrip(
      "{\"id\":1,\"op\":\"ping\"}\n" + eval_frame("2", kModelSource) + "\n",
      2);
  ASSERT_EQ(responses.size(), 2u);
  for (const std::string& response : responses) {
    EXPECT_TRUE(expect_response(response).value.find("ok")->boolean)
        << response;
  }
}

TEST_F(ServerFixture, MidRequestDisconnectLeavesServerHealthy) {
  // Half a frame, no newline, slam the connection shut.
  const int fd = connect_once();
  ASSERT_GE(fd, 0);
  const std::string partial = "{\"id\":1,\"op\":\"eval\",\"sour";
  ASSERT_EQ(::write(fd, partial.data(), partial.size()),
            static_cast<ssize_t>(partial.size()));
  close(fd);
  // The server still answers a fresh connection.
  const std::vector<std::string> responses =
      roundtrip("{\"id\":2,\"op\":\"ping\"}\n", 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_TRUE(expect_response(responses[0]).value.find("ok")->boolean);
}

TEST_F(ServerFixture, OversizedFrameGetsTooLargeOverTheWire) {
  const std::string oversized(server_->config().engine.max_request_bytes + 64,
                              'x');
  const std::vector<std::string> responses = roundtrip(oversized + "\n", 1);
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(error_kind(expect_response(responses[0])), wire::kTooLarge);
}

}  // namespace
