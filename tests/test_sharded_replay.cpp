// Shard-equivalence suite: set-sharded parallel replay must be bit-identical
// to the single-stream CacheSimulator for every thread count and policy,
// including the eviction-handler and flush() interplay.
#include "dvf/cachesim/sharded_replay.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/rng.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/trace/trace_io.hpp"
#include "dvf/trace/trace_reader.hpp"

namespace dvf {
namespace {

/// Mixed random/sequential stream with line-spanning accesses, several
/// structures, and enough churn to evict and write back continuously.
std::vector<MemoryRecord> shard_reference_string() {
  std::vector<MemoryRecord> records;
  Xoshiro256 rng(7);
  std::uint64_t addr = 0;
  for (int i = 0; i < 30000; ++i) {
    const bool random = (i % 3) == 0;
    addr = random ? rng.below(1u << 17) : addr + 8;
    records.push_back({addr, 8, static_cast<DsId>(i % 5), (i % 4) == 0});
  }
  for (int i = 0; i < 128; ++i) {
    records.push_back({rng.below(1u << 17), 96, 1, (i & 1) != 0});
  }
  return records;
}

void expect_identical(const CacheStats& a, const CacheStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.accesses, b.accesses) << what;
  EXPECT_EQ(a.hits, b.hits) << what;
  EXPECT_EQ(a.misses, b.misses) << what;
  EXPECT_EQ(a.writebacks, b.writebacks) << what;
}

struct ShardCase {
  unsigned threads;
  ReplacementPolicy policy;
  CacheConfig config;
};

class ShardedReplayEquivalence : public ::testing::TestWithParam<ShardCase> {};

TEST_P(ShardedReplayEquivalence, BitIdenticalToSingleStream) {
  const ShardCase& c = GetParam();
  const auto records = shard_reference_string();

  CacheSimulator reference(c.config, c.policy);
  reference.replay(records);
  reference.flush();

  ShardedReplayer sharded(c.config, c.threads, c.policy);
  sharded.replay(records);
  sharded.flush();

  EXPECT_EQ(sharded.shards(), c.threads);
  for (DsId ds = 0; ds < 5; ++ds) {
    expect_identical(sharded.stats(ds), reference.stats(ds),
                     "ds=" + std::to_string(ds));
  }
  expect_identical(sharded.stats(kNoDs), reference.stats(kNoDs), "kNoDs");
  expect_identical(sharded.total_stats(), reference.total_stats(), "total");
  EXPECT_EQ(sharded.evictions(), reference.evictions());
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndPolicies, ShardedReplayEquivalence,
    ::testing::Values(
        // The pinned 1/2/8-thread trio on the pow2 reference geometry.
        ShardCase{1, ReplacementPolicy::kLru,
                  CacheConfig("pow2-64set", 4, 64, 32)},
        ShardCase{2, ReplacementPolicy::kLru,
                  CacheConfig("pow2-64set", 4, 64, 32)},
        ShardCase{8, ReplacementPolicy::kLru,
                  CacheConfig("pow2-64set", 4, 64, 32)},
        // Non-pow2 set count and shard counts that do not divide it.
        ShardCase{3, ReplacementPolicy::kLru,
                  CacheConfig("mod-60set", 4, 60, 32)},
        ShardCase{8, ReplacementPolicy::kLru,
                  CacheConfig("mod-60set", 4, 60, 32)},
        // The approximate policies shard identically (per-set state only).
        ShardCase{8, ReplacementPolicy::kPlru,
                  CacheConfig("pow2-64set", 4, 64, 32)},
        ShardCase{8, ReplacementPolicy::kRrip,
                  CacheConfig("pow2-64set", 4, 64, 32)},
        // More shards than sets: the surplus shards simply stay idle.
        ShardCase{8, ReplacementPolicy::kLru,
                  CacheConfig("mod-3set", 2, 3, 16)}),
    [](const ::testing::TestParamInfo<ShardCase>& info) {
      return std::string(info.param.config.name().find("pow2") == 0
                             ? "pow2_"
                             : "mod_") +
             policy_name(info.param.policy) + "_t" +
             std::to_string(info.param.threads) + "_" +
             std::to_string(info.index);
    });

TEST(ShardedReplay, EvictionHandlerSeesEveryEvictionAcrossThreads) {
  const CacheConfig config("pow2-64set", 4, 64, 32);
  const auto records = shard_reference_string();

  std::uint64_t ref_evictions = 0;
  std::uint64_t ref_dirty = 0;
  CacheSimulator reference(config);
  reference.set_eviction_handler(
      [&](std::uint64_t, DsId, bool dirty) {
        ++ref_evictions;
        ref_dirty += dirty ? 1 : 0;
      });
  reference.replay(records);
  reference.flush();

  // During parallel replay the handler fires concurrently from the workers,
  // so it must be thread-safe: atomics here.
  std::atomic<std::uint64_t> evictions{0};
  std::atomic<std::uint64_t> dirty_evictions{0};
  ShardedReplayer sharded(config, 4);
  sharded.set_eviction_handler(
      [&](std::uint64_t, DsId, bool dirty) {
        evictions.fetch_add(1, std::memory_order_relaxed);
        dirty_evictions.fetch_add(dirty ? 1 : 0, std::memory_order_relaxed);
      });
  sharded.replay(records);
  sharded.flush();

  EXPECT_EQ(evictions.load(), ref_evictions);
  EXPECT_EQ(dirty_evictions.load(), ref_dirty);
}

TEST(ShardedReplay, FlushAndResetMirrorSingleSimulator) {
  const CacheConfig config("pow2-64set", 4, 64, 32);
  const auto records = shard_reference_string();

  ShardedReplayer sharded(config, 4);
  sharded.replay(records);
  const CacheStats before_flush = sharded.total_stats();
  sharded.flush();
  const CacheStats after_flush = sharded.total_stats();
  EXPECT_GT(after_flush.writebacks, before_flush.writebacks);
  sharded.flush();  // idempotent
  expect_identical(sharded.total_stats(), after_flush, "double flush");

  sharded.reset();
  EXPECT_EQ(sharded.total_stats().accesses, 0u);
  EXPECT_EQ(sharded.evictions(), 0u);

  // Usable again after reset, and still equivalent.
  CacheSimulator reference(config);
  reference.replay(records);
  reference.flush();
  sharded.replay(records);
  sharded.flush();
  expect_identical(sharded.total_stats(), reference.total_stats(),
                   "post-reset replay");
}

TEST(ShardedReplay, StreamedTraceMatchesMaterializedReplay) {
  const CacheConfig config("pow2-64set", 4, 64, 32);
  const auto records = shard_reference_string();

  DataStructureRegistry registry;
  static int dummy[8];
  for (int i = 0; i < 5; ++i) {
    (void)registry.register_structure("ds" + std::to_string(i), dummy,
                                      sizeof(dummy), 4);
  }
  std::stringstream stream;
  write_trace(stream, registry, records);

  CacheSimulator reference(config);
  reference.replay(records);
  reference.flush();

  TraceReader reader(stream);
  ShardedReplayer sharded(config, 4);
  sharded.replay_stream(reader);
  sharded.flush();

  EXPECT_TRUE(reader.done());
  EXPECT_EQ(reader.records_delivered(), records.size());
  for (DsId ds = 0; ds < 5; ++ds) {
    expect_identical(sharded.stats(ds), reference.stats(ds),
                     "ds=" + std::to_string(ds));
  }
  expect_identical(sharded.total_stats(), reference.total_stats(), "total");
}

}  // namespace
}  // namespace dvf
