// Unit + property tests for the streaming-access model (Eqs. 3–4 and the
// three CL/E/S cases), including cross-validation against the simulator.
#include "dvf/patterns/streaming.hpp"

#include <gtest/gtest.h>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/error.hpp"
#include "dvf/common/math.hpp"

namespace dvf {
namespace {

CacheConfig cache32() { return {"c32", 4, 64, 32}; }  // CL = 32

TEST(MisalignmentProbability, MatchesEq3) {
  EXPECT_DOUBLE_EQ(misalignment_probability(8, 32), 7.0 / 32.0);
  EXPECT_DOUBLE_EQ(misalignment_probability(32, 32), 31.0 / 32.0);
  EXPECT_DOUBLE_EQ(misalignment_probability(1, 32), 0.0);
  EXPECT_DOUBLE_EQ(misalignment_probability(33, 32), 0.0);
  EXPECT_DOUBLE_EQ(misalignment_probability(48, 32), 15.0 / 32.0);
}

TEST(ExpectedAccessesPerElement, MatchesEq4) {
  // E = 64, CL = 32: two lines always, plus p = 31/32 chance of a third.
  EXPECT_DOUBLE_EQ(expected_accesses_per_element(64, 32), 2.0 + 31.0 / 32.0);
  // E = CL: one line plus p.
  EXPECT_DOUBLE_EQ(expected_accesses_per_element(32, 32), 1.0 + 31.0 / 32.0);
}

TEST(Streaming, ContiguousTraversalLoadsEveryLineOnce) {
  StreamingSpec s;
  s.element_bytes = 8;
  s.element_count = 1000;
  s.stride_elements = 1;
  // Case 3 (S < CL): ceil(D / CL) = ceil(8000/32) = 250.
  EXPECT_DOUBLE_EQ(estimate_streaming(s, cache32()), 250.0);
}

TEST(Streaming, LargeStrideCostsOneLinePerElementPlusAlignment) {
  StreamingSpec s;
  s.element_bytes = 8;
  s.element_count = 1024;
  s.stride_elements = 8;  // stride 64B > CL=32 > E=8: case 2
  const double p = 7.0 / 32.0;
  // ceil(D/S) = 8192/64 = 128 referenced elements.
  EXPECT_DOUBLE_EQ(estimate_streaming(s, cache32()), 128.0 * (1.0 + p));
}

TEST(Streaming, HugeElementsCountLinesPerElement) {
  StreamingSpec s;
  s.element_bytes = 128;  // CL <= E: case 1
  s.element_count = 64;
  s.stride_elements = 2;  // stride 256B > E
  const double ae = 4.0 + (127 % 32) / 32.0;  // floor(128/32) + p
  EXPECT_DOUBLE_EQ(estimate_streaming(s, cache32()),
                   math::ceil_div(64 * 128, 256) * ae);
}

TEST(Streaming, UnitStrideBigElementsLoadWholeFootprint) {
  StreamingSpec s;
  s.element_bytes = 64;  // CL <= E, S == E
  s.element_count = 100;
  s.stride_elements = 1;
  EXPECT_DOUBLE_EQ(estimate_streaming(s, cache32()), 6400.0 / 32.0);
}

TEST(Streaming, RejectsDegenerateSpecs) {
  StreamingSpec s;
  s.element_count = 0;
  EXPECT_THROW((void)estimate_streaming(s, cache32()), InvalidArgumentError);
  s.element_count = 10;
  s.stride_elements = 0;
  EXPECT_THROW((void)estimate_streaming(s, cache32()), InvalidArgumentError);
}

// Property: for aligned unit-stride streams the model must agree exactly
// with the simulator (all compulsory misses).
class StreamingVsSimulator
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StreamingVsSimulator, UnitStrideMatchesSimulatedMisses) {
  const int element_bytes = std::get<0>(GetParam());
  const int count = std::get<1>(GetParam());

  StreamingSpec s;
  s.element_bytes = static_cast<std::uint32_t>(element_bytes);
  s.element_count = static_cast<std::uint64_t>(count);
  s.stride_elements = 1;

  CacheSimulator sim(cache32());
  for (int i = 0; i < count; ++i) {
    sim.on_load(0, static_cast<std::uint64_t>(i) * element_bytes,
                static_cast<std::uint32_t>(element_bytes));
  }
  const double predicted = estimate_streaming(s, cache32());
  const auto simulated = static_cast<double>(sim.stats(0).misses);
  // The alignment probability term can over-count for aligned streams; the
  // paper's acceptance bound is 15%. Aligned unit-stride is exact.
  EXPECT_DOUBLE_EQ(predicted, simulated);
}

INSTANTIATE_TEST_SUITE_P(
    AlignedUnitStride, StreamingVsSimulator,
    ::testing::Combine(::testing::Values(4, 8, 16, 32),
                       ::testing::Values(64, 100, 1000, 4096)));

// Property: strided streams stay within the paper's 15% band against the
// simulator when elements are naturally aligned.
class StridedStreamingVsSimulator
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StridedStreamingVsSimulator, WithinPaperErrorBand) {
  const int element_bytes = std::get<0>(GetParam());
  const int stride = std::get<1>(GetParam());
  const int count = 4096;

  StreamingSpec s;
  s.element_bytes = static_cast<std::uint32_t>(element_bytes);
  s.element_count = static_cast<std::uint64_t>(count);
  s.stride_elements = static_cast<std::uint64_t>(stride);

  CacheSimulator sim(cache32());
  for (std::uint64_t i = 0; i * stride < static_cast<std::uint64_t>(count);
       ++i) {
    sim.on_load(0, i * stride * element_bytes,
                static_cast<std::uint32_t>(element_bytes));
  }
  const double predicted = estimate_streaming(s, cache32());
  const auto simulated = static_cast<double>(sim.stats(0).misses);
  // Alignment-probability estimates overshoot aligned runs by up to p; allow
  // the paper's 15% plus the explicit p margin.
  const double p = misalignment_probability(s.element_bytes, 32);
  EXPECT_LE(math::relative_error(predicted, simulated), 0.15 + p)
      << "E=" << element_bytes << " stride=" << stride;
}

INSTANTIATE_TEST_SUITE_P(
    StridedSweep, StridedStreamingVsSimulator,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values(1, 2, 4, 8, 16)));

}  // namespace
}  // namespace dvf
