// Unit tests for the string utilities used by the DSL and reporters.
#include "dvf/common/string_util.hpp"

#include <gtest/gtest.h>

namespace dvf {
namespace {

TEST(Split, PreservesEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Trim, RemovesOuterWhitespaceOnly) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("a b"), "a b");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("pattern", "pat"));
  EXPECT_FALSE(starts_with("pat", "pattern"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(FormatSignificant, RoundsToSignificantDigits) {
  EXPECT_EQ(format_significant(1234.5678, 4), "1235");
  EXPECT_EQ(format_significant(0.00012345, 3), "0.000123");
  EXPECT_EQ(format_significant(1.0, 4), "1");
}

TEST(FormatSignificant, SpecialValues) {
  EXPECT_EQ(format_significant(std::numeric_limits<double>::quiet_NaN()),
            "nan");
  EXPECT_EQ(format_significant(std::numeric_limits<double>::infinity()),
            "inf");
  EXPECT_EQ(format_significant(-std::numeric_limits<double>::infinity()),
            "-inf");
}

}  // namespace
}  // namespace dvf
