// Unit + property tests for the template-based model: the stack-distance
// analyzer (cross-validated against a brute-force oracle), block expansion,
// and the two-step counting algorithm.
#include "dvf/patterns/template_access.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <vector>

#include "dvf/common/error.hpp"
#include "dvf/common/rng.hpp"

namespace dvf {
namespace {

/// Brute-force stack distance: distinct blocks strictly between the previous
/// and current use.
std::vector<std::uint64_t> oracle_distances(
    const std::vector<std::uint64_t>& blocks) {
  std::vector<std::uint64_t> out;
  std::unordered_map<std::uint64_t, std::size_t> last;
  for (std::size_t t = 0; t < blocks.size(); ++t) {
    const auto it = last.find(blocks[t]);
    if (it == last.end()) {
      out.push_back(ReuseDistanceAnalyzer::kColdMiss);
    } else {
      std::set<std::uint64_t> distinct;
      for (std::size_t u = it->second + 1; u < t; ++u) {
        distinct.insert(blocks[u]);
      }
      out.push_back(distinct.size());
    }
    last[blocks[t]] = t;
  }
  return out;
}

TEST(ReuseDistance, SimpleSequences) {
  ReuseDistanceAnalyzer analyzer;
  EXPECT_EQ(analyzer.observe(10), ReuseDistanceAnalyzer::kColdMiss);
  EXPECT_EQ(analyzer.observe(10), 0u);          // immediate reuse
  EXPECT_EQ(analyzer.observe(20), ReuseDistanceAnalyzer::kColdMiss);
  EXPECT_EQ(analyzer.observe(10), 1u);          // one distinct block between
  EXPECT_EQ(analyzer.observe(30), ReuseDistanceAnalyzer::kColdMiss);
  EXPECT_EQ(analyzer.observe(20), 2u);          // 10 and 30 in between
  EXPECT_EQ(analyzer.distinct_blocks(), 3u);
}

TEST(ReuseDistance, RepeatedBlockBetweenUsesCountsOnce) {
  ReuseDistanceAnalyzer analyzer;
  (void)analyzer.observe(1);
  (void)analyzer.observe(2);
  (void)analyzer.observe(2);
  (void)analyzer.observe(2);
  EXPECT_EQ(analyzer.observe(1), 1u);  // block 2 appears once, not thrice
}

TEST(ReuseDistance, MatchesOracleOnRandomStrings) {
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> blocks;
    for (int i = 0; i < 400; ++i) {
      blocks.push_back(rng.below(40));
    }
    const auto expected = oracle_distances(blocks);
    ReuseDistanceAnalyzer analyzer;
    for (std::size_t t = 0; t < blocks.size(); ++t) {
      ASSERT_EQ(analyzer.observe(blocks[t]), expected[t])
          << "trial " << trial << " position " << t;
    }
  }
}

TEST(ReuseDistance, SurvivesCompactionOnLongStreams) {
  // Run far past the eager tree capacity with a small block universe so the
  // compaction path executes; compare against the oracle on a suffix.
  ReuseDistanceAnalyzer analyzer(8);
  Xoshiro256 rng(7);
  std::vector<std::uint64_t> blocks;
  for (int i = 0; i < 200000; ++i) {
    blocks.push_back(rng.below(64));
  }
  const auto expected = oracle_distances(blocks);
  for (std::size_t t = 0; t < blocks.size(); ++t) {
    ASSERT_EQ(analyzer.observe(blocks[t]), expected[t]) << "position " << t;
  }
}

TEST(BlocksFromElements, MapsThroughElementAndLineSizes) {
  const std::vector<std::uint64_t> idx = {0, 1, 2, 3, 4};
  // 8-byte elements, 32-byte lines: four elements per block.
  const auto blocks = blocks_from_elements(idx, 8, 32);
  EXPECT_EQ(blocks, (std::vector<std::uint64_t>{0, 0, 0, 0, 1}));
}

TEST(BlocksFromElements, WideElementsTouchEveryCoveredBlock) {
  const std::vector<std::uint64_t> idx = {0, 1};
  // 64-byte elements over 32-byte lines: each element covers two blocks.
  const auto blocks = blocks_from_elements(idx, 64, 32);
  EXPECT_EQ(blocks, (std::vector<std::uint64_t>{0, 1, 2, 3}));
}

TEST(TemplateEstimate, ColdBlocksOnlyWhenFitting) {
  TemplateSpec spec;
  spec.element_bytes = 32;
  for (int rep = 0; rep < 5; ++rep) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      spec.element_indices.push_back(i);
    }
  }
  const CacheConfig c("c", 4, 64, 32);  // 256 blocks >= 100
  EXPECT_DOUBLE_EQ(estimate_template(spec, c), 100.0);
}

TEST(TemplateEstimate, CyclicOverCapacityThrashes) {
  TemplateSpec spec;
  spec.element_bytes = 32;
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uint64_t i = 0; i < 300; ++i) {  // 300 blocks > 256
      spec.element_indices.push_back(i);
    }
  }
  const CacheConfig c("c", 4, 64, 32);
  // Every reference misses under LRU for a cyclic over-capacity scan.
  EXPECT_DOUBLE_EQ(estimate_template(spec, c), 900.0);
}

TEST(TemplateEstimate, RepetitionsEquivalentToMaterializedRepeats) {
  TemplateSpec once;
  once.element_bytes = 8;
  Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    once.element_indices.push_back(rng.below(2000));
  }
  TemplateSpec repeated = once;
  repeated.repetitions = 4;
  TemplateSpec materialized = once;
  for (int rep = 1; rep < 4; ++rep) {
    materialized.element_indices.insert(materialized.element_indices.end(),
                                        once.element_indices.begin(),
                                        once.element_indices.end());
  }
  const CacheConfig c("c", 2, 32, 32);
  EXPECT_DOUBLE_EQ(estimate_template(repeated, c),
                   estimate_template(materialized, c));
}

TEST(TemplateEstimate, CacheRatioReducesEffectiveCapacity) {
  TemplateSpec spec;
  spec.element_bytes = 32;
  for (int rep = 0; rep < 2; ++rep) {
    for (std::uint64_t i = 0; i < 200; ++i) {
      spec.element_indices.push_back(i);
    }
  }
  const CacheConfig c("c", 4, 64, 32);  // 256 blocks
  spec.cache_ratio = 1.0;
  const double full = estimate_template(spec, c);   // fits: 200
  spec.cache_ratio = 0.5;                            // 128 blocks: thrash
  const double half = estimate_template(spec, c);
  EXPECT_DOUBLE_EQ(full, 200.0);
  EXPECT_DOUBLE_EQ(half, 400.0);
}

TEST(TemplateEstimate, RawDistanceVariantDiffersOnSkewedStrings) {
  // A string where raw distance is large but only one distinct block
  // intervenes: stack treats it as a hit, raw as a miss.
  TemplateSpec spec;
  spec.element_bytes = 32;
  spec.element_indices.push_back(0);
  for (int i = 0; i < 400; ++i) {
    spec.element_indices.push_back(1);
  }
  spec.element_indices.push_back(0);
  const CacheConfig c("c", 4, 64, 32);
  spec.distance = DistanceKind::kStack;
  EXPECT_DOUBLE_EQ(estimate_template(spec, c), 2.0);
  spec.distance = DistanceKind::kRaw;
  EXPECT_DOUBLE_EQ(estimate_template(spec, c), 3.0);
}

TEST(TemplateEstimate, RejectsInvalidSpecs) {
  TemplateSpec spec;
  const CacheConfig c("c", 4, 64, 32);
  EXPECT_THROW((void)estimate_template(spec, c), InvalidArgumentError);
  spec.element_indices = {1, 2, 3};
  spec.cache_ratio = 0.0;
  EXPECT_THROW((void)estimate_template(spec, c), InvalidArgumentError);
  spec.cache_ratio = 1.0;
  spec.repetitions = 0;
  EXPECT_THROW((void)estimate_template(spec, c), InvalidArgumentError);
}

}  // namespace
}  // namespace dvf
