// Unit + differential tests for the tiled/blocked access-pattern family:
// the three-case closed form, geometry clamping, overflow/precondition
// totality, DSL lowering (including derived columns and DVF-E019), the
// canonical hash, and the LRU-replay oracle the fuzz harness also drives.
#include "dvf/patterns/tiled.hpp"

#include <gtest/gtest.h>

#include <variant>

#include "dvf/analysis/bounds.hpp"
#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/budget.hpp"
#include "dvf/common/error.hpp"
#include "dvf/dsl/analyzer.hpp"
#include "dvf/dsl/parser.hpp"
#include "dvf/patterns/estimate.hpp"

namespace dvf {
namespace {

CacheConfig cache8k() { return {"c8k", 4, 64, 32}; }  // 8 KiB, 32 B lines

TiledSpec base_spec() {
  TiledSpec s;
  s.element_bytes = 8;
  s.rows = 16;
  s.cols = 16;
  s.tile_rows = 4;
  s.tile_cols = 4;
  return s;
}

TEST(TiledEstimate, FittingFootprintCostsOneColdSweep) {
  // 16x16 doubles = 2 KiB fits the 8 KiB cache: only compulsory misses,
  // regardless of passes and intra-tile reuse. One matrix row spans
  // 16*8/32 = 4 lines; 16 rows -> 64 lines.
  TiledSpec s = base_spec();
  s.passes = 3;
  s.intra_reuse = 2;
  EXPECT_DOUBLE_EQ(estimate_tiled(s, cache8k()), 64.0);
}

TEST(TiledEstimate, FittingTileRefetchesFootprintPerPass) {
  // 64x64 doubles = 32 KiB exceeds the cache, the 8x8 tile (512 B) fits:
  // intra-tile re-reads hit, each pass re-streams the matrix. One row is
  // 8 tiles of ceil(64/32) = 2 lines -> 16 lines; 64 rows -> 1024 lines.
  TiledSpec s = base_spec();
  s.rows = 64;
  s.cols = 64;
  s.tile_rows = 8;
  s.tile_cols = 8;
  s.passes = 4;
  s.intra_reuse = 5;  // must not appear in the case-2 count
  EXPECT_DOUBLE_EQ(estimate_tiled(s, cache8k()), 4.0 * 1024.0);
}

TEST(TiledEstimate, OversizeTileMissesOnEveryTraversal) {
  // ratio 0.04 shrinks the share to ~328 B, below the 512 B tile: every
  // pass and every intra-tile re-read misses the whole sweep.
  TiledSpec s = base_spec();
  s.rows = 64;
  s.cols = 64;
  s.tile_rows = 8;
  s.tile_cols = 8;
  s.passes = 2;
  s.intra_reuse = 3;
  s.cache_ratio = 0.04;
  EXPECT_DOUBLE_EQ(estimate_tiled(s, cache8k()), 2.0 * 4.0 * 1024.0);
}

TEST(TiledEstimate, RemainderColumnsCountTheirOwnSegments) {
  // cols = 10, tc = 4: two full 32-byte segments plus a 16-byte remainder
  // per row -> 3 lines per row, 5 rows -> 15 lines; footprint fits.
  TiledSpec s = base_spec();
  s.rows = 5;
  s.cols = 10;
  s.tile_cols = 4;
  EXPECT_DOUBLE_EQ(estimate_tiled(s, cache8k()), 15.0);
}

TEST(TiledEstimate, OversizeTileClampsToTheMatrixEdge) {
  // A 100x100 tile over an 8x8 matrix behaves as a whole-matrix tile
  // (DVF-W112 in lint); the fitting footprint still costs one cold sweep.
  TiledSpec s = base_spec();
  s.rows = 8;
  s.cols = 8;
  s.tile_rows = 100;
  s.tile_cols = 100;
  EXPECT_DOUBLE_EQ(estimate_tiled(s, cache8k()), 16.0);
}

TEST(TiledEstimate, PreconditionsAreClassifiedErrors) {
  const CacheConfig cache = cache8k();
  for (const auto mutate : {
           +[](TiledSpec& s) { s.rows = 0; },
           +[](TiledSpec& s) { s.cols = 0; },
           +[](TiledSpec& s) { s.element_bytes = 0; },
           +[](TiledSpec& s) { s.tile_rows = 0; },
           +[](TiledSpec& s) { s.tile_cols = 0; },
           +[](TiledSpec& s) { s.passes = 0; },
           +[](TiledSpec& s) { s.cache_ratio = 0.0; },
           +[](TiledSpec& s) { s.cache_ratio = 1.5; },
       }) {
    TiledSpec s = base_spec();
    mutate(s);
    const Result<double> r = try_estimate_tiled(s, cache);
    EXPECT_FALSE(r.ok());
    EXPECT_THROW((void)estimate_tiled(s, cache), Error);
  }
}

TEST(TiledEstimate, HugeGeometryIsAClassifiedOverflow) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  TiledSpec s = base_spec();
  s.cols = kMax / 2;
  Result<double> r = try_estimate_tiled(s, cache8k());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kOverflow);

  s = base_spec();
  s.rows = kMax / 4;
  s.cols = kMax / 4;
  r = try_estimate_tiled(s, cache8k());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kOverflow);
}

TEST(TiledEstimate, ChargesTheEvalBudget) {
  EvalLimits limits;
  limits.max_references = 1;  // room for exactly one closed-form charge
  EvalBudget budget(limits);
  ASSERT_TRUE(try_estimate_tiled(base_spec(), cache8k(), &budget).ok());
  const Result<double> r = try_estimate_tiled(base_spec(), cache8k(), &budget);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kResourceLimit);
}

TEST(TiledEstimate, DispatchesThroughThePatternVariant) {
  const PatternSpec spec{base_spec()};
  EXPECT_EQ(pattern_letter(spec), 'b');
  const Result<double> r = try_estimate_accesses(spec, cache8k());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(*r, 64.0);
}

// ---- DSL lowering ---------------------------------------------------------

constexpr const char* kHeader = R"(
machine "m" {
  cache { associativity 4; sets 64; line 32; }
  memory { fit 100; }
}
)";

TEST(TiledLowering, DerivesColumnsAndDefaults) {
  const dsl::CompiledProgram c = dsl::compile(
      std::string(kHeader) + R"(
model "M" {
  data A { elements 1024; element_size 8; }
  pattern A tiled { tile (4, 8); rows 32; }
})");
  const auto* a = c.models.at(0).find("A");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->patterns.size(), 1u);
  const auto& t = std::get<TiledSpec>(a->patterns[0]);
  EXPECT_EQ(t.element_bytes, 8u);
  EXPECT_EQ(t.rows, 32u);
  EXPECT_EQ(t.cols, 32u);  // 1024 / 32
  EXPECT_EQ(t.tile_rows, 4u);
  EXPECT_EQ(t.tile_cols, 8u);
  EXPECT_EQ(t.passes, 1u);
  EXPECT_EQ(t.intra_reuse, 0u);
  EXPECT_DOUBLE_EQ(t.cache_ratio, 1.0);
}

TEST(TiledLowering, ExplicitPropertiesCarryThrough) {
  const dsl::CompiledProgram c = dsl::compile(
      std::string(kHeader) + R"(
model "M" {
  data A { elements 1024; element_size 8; }
  pattern A tiled { tile (8, 16); rows 16; cols 64; passes 4;
                    intra_reuse 3; ratio 0.25; }
})");
  const auto& t =
      std::get<TiledSpec>(c.models.at(0).find("A")->patterns.at(0));
  EXPECT_EQ(t.rows, 16u);
  EXPECT_EQ(t.cols, 64u);
  EXPECT_EQ(t.tile_rows, 8u);
  EXPECT_EQ(t.tile_cols, 16u);
  EXPECT_EQ(t.passes, 4u);
  EXPECT_EQ(t.intra_reuse, 3u);
  EXPECT_DOUBLE_EQ(t.cache_ratio, 0.25);
}

TEST(TiledLowering, GeometryMismatchesAreE019) {
  // rows does not divide the element count, so cols cannot be derived.
  EXPECT_THROW((void)dsl::compile(std::string(kHeader) + R"(
model "M" {
  data A { elements 100; element_size 8; }
  pattern A tiled { tile (4, 4); rows 7; }
})"),
               SemanticError);
  // rows * cols disagrees with the declared element count.
  EXPECT_THROW((void)dsl::compile(std::string(kHeader) + R"(
model "M" {
  data A { elements 1024; element_size 8; }
  pattern A tiled { tile (4, 4); rows 32; cols 16; }
})"),
               SemanticError);
  // Zero tile dimensions are meaningless geometry.
  EXPECT_THROW((void)dsl::compile(std::string(kHeader) + R"(
model "M" {
  data A { elements 1024; element_size 8; }
  pattern A tiled { tile (0, 4); rows 32; }
})"),
               SemanticError);
}

TEST(TiledLowering, MalformedDeclarationsAreRejected) {
  // Missing the tile tuple (DVF-E007).
  EXPECT_THROW((void)dsl::compile(std::string(kHeader) + R"(
model "M" {
  data A { elements 1024; element_size 8; }
  pattern A tiled { rows 32; }
})"),
               SemanticError);
  // Wrong tuple arity (DVF-E011).
  EXPECT_THROW((void)dsl::compile(std::string(kHeader) + R"(
model "M" {
  data A { elements 1024; element_size 8; }
  pattern A tiled { tile (4, 4, 4); rows 32; }
})"),
               SemanticError);
  // Unknown property (DVF-E006).
  EXPECT_THROW((void)dsl::compile(std::string(kHeader) + R"(
model "M" {
  data A { elements 1024; element_size 8; }
  pattern A tiled { tile (4, 4); rows 32; stride 2; }
})"),
               SemanticError);
}

// ---- analysis: bounds, hash, thread determinism ---------------------------

constexpr const char* kTiledModel = R"(
machine "m" {
  cache { associativity 4; sets 64; line 32; }
  memory { fit 100; }
}
model "M" {
  time 1.0;
  data A { elements 4096; element_size 8; }
  pattern A tiled { tile (8, 8); rows 64; passes 8; intra_reuse 7; ratio 0.5; }
}
)";

TEST(TiledAnalysis, BoundsContainTheEvaluatorAtOneAndFourThreads) {
  const dsl::CompiledProgram p = dsl::compile(kTiledModel);
  for (const unsigned threads : {1u, 4u}) {
    analysis::AnalysisOptions options;
    options.threads = threads;
    const analysis::AnalysisReport report =
        analysis::analyze(p.machines, p.models, options);
    const analysis::ModelBounds* model = report.find_model("M");
    ASSERT_NE(model, nullptr);
    ASSERT_EQ(model->structures.size(), 1u);
    const analysis::StructureBounds& a = model->structures[0];
    ASSERT_EQ(a.per_machine.size(), 1u);
    EXPECT_FALSE(a.per_machine[0].eval_rejects);
    const double n_ha = estimate_accesses(
        p.models.at(0).find("A")->patterns.at(0), p.machines.at(0).llc);
    EXPECT_TRUE(a.per_machine[0].n_ha.contains(n_ha))
        << n_ha << " outside [" << a.per_machine[0].n_ha.lo << ", "
        << a.per_machine[0].n_ha.hi << "] at " << threads << " threads";
  }
}

TEST(TiledAnalysis, CanonicalHashIsThreadInvariantAndFieldSensitive) {
  const dsl::CompiledProgram p = dsl::compile(kTiledModel);
  analysis::AnalysisOptions one;
  one.threads = 1;
  analysis::AnalysisOptions four;
  four.threads = 4;
  const std::uint64_t h1 =
      analysis::analyze(p.machines, p.models, one).canonical_hash;
  const std::uint64_t h4 =
      analysis::analyze(p.machines, p.models, four).canonical_hash;
  EXPECT_EQ(h1, h4);
  EXPECT_NE(h1, 0u);

  // Any tiled field change must move the hash (the serve daemon keys its
  // admission cache on it).
  const std::string perturbed = [] {
    std::string s = kTiledModel;
    const auto at = s.find("passes 8");
    return s.replace(at, 8, "passes 9");
  }();
  const dsl::CompiledProgram q = dsl::compile(perturbed);
  EXPECT_NE(analysis::analyze(q.machines, q.models, one).canonical_hash, h1);
}

// ---- differential oracle --------------------------------------------------

/// Replays the exact loop nest the tiled model describes: P passes over the
/// row-major tile grid, each tile swept (1 + Q) times row by row. Geometry
/// must be tile-divisible.
double replay_tiled(const TiledSpec& spec, const CacheConfig& cache) {
  CacheSimulator sim(cache);
  const std::uint64_t tiles_r = spec.rows / spec.tile_rows;
  const std::uint64_t tiles_c = spec.cols / spec.tile_cols;
  for (std::uint64_t pass = 0; pass < spec.passes; ++pass) {
    for (std::uint64_t bi = 0; bi < tiles_r; ++bi) {
      for (std::uint64_t bj = 0; bj < tiles_c; ++bj) {
        for (std::uint64_t sweep = 0; sweep <= spec.intra_reuse; ++sweep) {
          for (std::uint64_t r = 0; r < spec.tile_rows; ++r) {
            const std::uint64_t row = bi * spec.tile_rows + r;
            for (std::uint64_t c = 0; c < spec.tile_cols; ++c) {
              const std::uint64_t col = bj * spec.tile_cols + c;
              sim.on_load(0, (row * spec.cols + col) * spec.element_bytes,
                          spec.element_bytes);
            }
          }
        }
      }
    }
  }
  return static_cast<double>(sim.stats(0).misses);
}

TEST(TiledOracle, FittingFootprintReplayIsExact) {
  TiledSpec s = base_spec();
  s.passes = 2;
  s.intra_reuse = 1;
  EXPECT_DOUBLE_EQ(estimate_tiled(s, cache8k()), replay_tiled(s, cache8k()));
}

TEST(TiledOracle, OversizeTileReplayIsExact) {
  // One whole-matrix tile of 4x the cache: the LRU cyclic-scan pathology
  // makes every sweep miss fully, exactly the case-3 count.
  TiledSpec s = base_spec();
  s.rows = 64;
  s.cols = 64;
  s.tile_rows = 64;
  s.tile_cols = 64;
  s.passes = 2;
  s.intra_reuse = 1;
  EXPECT_DOUBLE_EQ(estimate_tiled(s, cache8k()), replay_tiled(s, cache8k()));
}

TEST(TiledOracle, CacheFittingTileReplayStaysInTheBand) {
  // 128x40 doubles = 40 KiB (5x the cache) swept in 4x8 tiles: case 2's
  // per-pass refetch, within the documented ±15% band
  // (dvf::fuzz::kTiledOracleTolerance in fuzz/include/dvf/fuzz/fuzzer.hpp).
  TiledSpec s = base_spec();
  s.rows = 128;
  s.cols = 40;
  s.tile_rows = 4;
  s.tile_cols = 8;
  s.passes = 2;
  s.intra_reuse = 2;
  const double predicted = estimate_tiled(s, cache8k());
  const double simulated = replay_tiled(s, cache8k());
  EXPECT_NEAR(predicted, simulated, 0.15 * simulated)
      << "predicted " << predicted << " vs simulated " << simulated;
}

}  // namespace
}  // namespace dvf
