// Adversarial-input totality: every try_* evaluator must return a classified
// EvalError — never throw, hang, or yield silent NaN/Inf — for hostile specs
// (huge counts, NaN parameters, expansion bombs, expired deadlines). These
// are the hand-picked counterparts of what the fuzz harness generates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "dvf/common/budget.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/result.hpp"
#include "dvf/dsl/template_expander.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/dvf/ecc.hpp"
#include "dvf/dvf/model_spec.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/machine/machine.hpp"
#include "dvf/patterns/estimate.hpp"
#include "dvf/patterns/random.hpp"
#include "dvf/patterns/reuse.hpp"
#include "dvf/patterns/specs.hpp"
#include "dvf/patterns/streaming.hpp"
#include "dvf/patterns/template_access.hpp"

namespace dvf {
namespace {

CacheConfig small_cache() { return CacheConfig("c8k", 4, 32, 64); }

// Asserts that evaluating `expr` neither throws nor yields an unclassified
// non-finite value, and returns the Result for further kind checks.
#define EXPECT_TOTAL_ERROR(result_expr, expected_kind)               \
  do {                                                               \
    Result<double> total_result_ = (result_expr);                    \
    ASSERT_FALSE(total_result_.ok());                                \
    EXPECT_EQ(total_result_.error().kind, (expected_kind))           \
        << total_result_.error().describe();                         \
  } while (false)

TEST(TotalityStreaming, ZeroCountIsDomainError) {
  StreamingSpec spec;
  spec.element_count = 0;
  EXPECT_TOTAL_ERROR(try_estimate_streaming(spec, small_cache()),
                     ErrorKind::kDomainError);
}

TEST(TotalityStreaming, FootprintOverflowIsClassified) {
  StreamingSpec spec;
  spec.element_bytes = 16;
  spec.element_count = std::uint64_t{1} << 62;  // 16 * 2^62 wraps 64 bits
  spec.stride_elements = 1;
  EXPECT_TOTAL_ERROR(try_estimate_streaming(spec, small_cache()),
                     ErrorKind::kOverflow);
}

TEST(TotalityStreaming, StrideOverflowIsClassified) {
  StreamingSpec spec;
  spec.element_bytes = 8;
  spec.element_count = 4;
  spec.stride_elements = std::uint64_t{1} << 62;
  EXPECT_TOTAL_ERROR(try_estimate_streaming(spec, small_cache()),
                     ErrorKind::kOverflow);
}

TEST(TotalityStreaming, ExpiredDeadlineIsClassified) {
  EvalLimits limits;
  limits.wall_seconds = 1e-9;  // armed at construction; expired immediately
  EvalBudget budget(limits);
  StreamingSpec spec;
  spec.element_count = 1024;
  EXPECT_TOTAL_ERROR(try_estimate_streaming(spec, small_cache(), &budget),
                     ErrorKind::kDeadlineExceeded);
}

TEST(TotalityRandom, NanVisitsIsNonFinite) {
  RandomSpec spec;
  spec.element_count = 1024;
  spec.visits_per_iteration = std::nan("");
  spec.iterations = 10;
  EXPECT_TOTAL_ERROR(try_estimate_random(spec, small_cache()),
                     ErrorKind::kNonFinite);
}

TEST(TotalityRandom, InfiniteVisitsIsNonFinite) {
  RandomSpec spec;
  spec.element_count = 1024;
  spec.visits_per_iteration = std::numeric_limits<double>::infinity();
  spec.iterations = 10;
  EXPECT_TOTAL_ERROR(try_estimate_random(spec, small_cache()),
                     ErrorKind::kNonFinite);
}

TEST(TotalityRandom, PopulationBeyondCombinatoricLimitIsOverflow) {
  RandomSpec spec;
  spec.element_count = std::uint64_t{1} << 62;  // > kMaxCombinatoricPopulation
  spec.element_bytes = 1;
  spec.visits_per_iteration = 2.0;
  spec.iterations = 1;
  EXPECT_TOTAL_ERROR(try_estimate_random(spec, small_cache()),
                     ErrorKind::kOverflow);
}

TEST(TotalityRandom, HugeEqSixSupportTripsTheReferenceBudget) {
  EvalLimits limits;
  limits.max_references = 1024;  // Eq. 6 support below will exceed this
  EvalBudget budget(limits);
  RandomSpec spec;
  spec.element_count = 1 << 20;
  spec.element_bytes = 64;  // footprint far beyond the 8 KiB cache
  spec.visits_per_iteration = 100000.0;
  spec.iterations = 3;
  EXPECT_TOTAL_ERROR(try_estimate_random(spec, small_cache(), &budget),
                     ErrorKind::kResourceLimit);
}

TEST(TotalityRandom, OutOfRangeVisitFractionIsDomainError) {
  RandomSpec spec;
  spec.element_count = 1 << 16;
  spec.element_bytes = 64;
  spec.iterations = 4;
  spec.sorted_visit_fractions = {0.5, -0.25};  // not a probability
  EXPECT_TOTAL_ERROR(try_estimate_random(spec, small_cache()),
                     ErrorKind::kDomainError);
}

TEST(TotalityRandom, NanVisitFractionIsNonFinite) {
  RandomSpec spec;
  spec.element_count = 1 << 16;
  spec.element_bytes = 64;
  spec.iterations = 4;
  spec.sorted_visit_fractions = {0.5, std::nan("")};
  EXPECT_TOTAL_ERROR(try_estimate_random(spec, small_cache()),
                     ErrorKind::kNonFinite);
}

TEST(TotalityTemplate, EmptyReferenceStringIsDomainError) {
  TemplateSpec spec;
  EXPECT_TOTAL_ERROR(try_estimate_template(spec, small_cache()),
                     ErrorKind::kDomainError);
}

TEST(TotalityTemplate, HugeReplayTripsTheDefaultReferenceBudget) {
  // 1024 indices replayed 2^40 times is ~2^50 reference positions — far
  // beyond the process-default 2^28 cap. Must degrade into resource_limit,
  // not a day-long replay.
  TemplateSpec spec;
  spec.element_indices.assign(1024, 0);
  for (std::size_t i = 0; i < spec.element_indices.size(); ++i) {
    spec.element_indices[i] = i;
  }
  spec.repetitions = std::uint64_t{1} << 40;
  EXPECT_TOTAL_ERROR(try_estimate_template(spec, small_cache()),
                     ErrorKind::kResourceLimit);
}

TEST(TotalityReuse, ZeroSelfIsDomainError) {
  ReuseSpec spec;
  spec.self_bytes = 0;
  EXPECT_TOTAL_ERROR(try_estimate_reuse(spec, small_cache()),
                     ErrorKind::kDomainError);
}

TEST(TotalityReuse, CombinedFootprintBeyondCombinatoricLimitIsOverflow) {
  ReuseSpec spec;
  spec.self_bytes = std::uint64_t{1} << 60;
  spec.other_bytes = std::uint64_t{1} << 60;
  spec.reuse_rounds = 2;
  spec.occupancy = ReuseOccupancy::kBernoulli;
  EXPECT_TOTAL_ERROR(try_estimate_reuse(spec, small_cache()),
                     ErrorKind::kOverflow);
}

TEST(TotalityComposition, FirstFailingPhasePropagates) {
  StreamingSpec ok;
  ok.element_count = 128;
  RandomSpec bad;
  bad.element_count = 1024;
  bad.visits_per_iteration = std::nan("");
  const std::vector<PatternSpec> phases{ok, bad};
  const auto r = try_estimate_accesses(
      std::span<const PatternSpec>(phases), small_cache());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kNonFinite);
}

TEST(TotalityExpansion, ExpansionBombIsResourceLimit) {
  // (0,1,2,3):1:2^62 would materialize ~2^64 indices. The default budget
  // caps expansion at 2^24 elements; the guarded expander must refuse.
  const std::vector<std::int64_t> start{0, 1, 2, 3};
  auto r = dsl::try_expand_progression(start, 1, std::uint64_t{1} << 62);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kResourceLimit);
}

TEST(TotalityExpansion, TightBudgetCapsSmallBombs) {
  EvalLimits limits;
  limits.max_expansion = 100;
  EvalBudget budget(limits);
  const std::vector<std::int64_t> start{0, 1};
  auto r = dsl::try_expand_progression(start, 2, 51, &budget);  // 102 elements
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kResourceLimit);

  budget.reset();
  auto ok = dsl::try_expand_progression(start, 2, 50, &budget);  // exactly 100
  ASSERT_TRUE(ok.ok()) << ok.error().describe();
  EXPECT_EQ(ok.value().size(), 100u);
}

TEST(TotalityExpansion, UnderflowingProgressionIsDomainError) {
  const std::vector<std::int64_t> start{4};
  auto r = dsl::try_expand_progression(start, -3, 3);  // 4, 1, -2: below element 0
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kDomainError);
}

TEST(TotalityCalculator, NanExecTimeIsNonFinite) {
  DvfCalculator calc(Machine::with_cache(small_cache()));
  DataStructureSpec ds;
  ds.name = "A";
  ds.size_bytes = 4096;
  StreamingSpec s;
  s.element_count = 512;
  ds.patterns.push_back(s);

  const auto r = calc.try_for_structure(ds, std::nan(""));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kNonFinite);
}

TEST(TotalityCalculator, NegativeExecTimeIsDomainError) {
  DvfCalculator calc(Machine::with_cache(small_cache()));
  DataStructureSpec ds;
  ds.name = "A";
  ds.size_bytes = 4096;
  StreamingSpec s;
  s.element_count = 512;
  ds.patterns.push_back(s);

  const auto r = calc.try_for_structure(ds, -1.0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kDomainError);
  // The compatibility wrapper maps it to the historical exception type.
  EXPECT_THROW(calc.for_structure(ds, -1.0), InvalidArgumentError);
}

TEST(TotalityCalculator, ModelWithoutExecTimeIsDomainError) {
  DvfCalculator calc(Machine::with_cache(small_cache()));
  ModelSpec model;
  model.name = "untimed";
  const auto r = calc.try_for_model(model);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kDomainError);
}

TEST(TotalityCalculator, AttachedDeadlineBudgetSurfacesThroughModelEval) {
  EvalLimits limits;
  limits.wall_seconds = 1e-9;
  EvalBudget budget(limits);

  DvfCalculator calc(Machine::with_cache(small_cache()));
  calc.set_budget(&budget);

  ModelSpec model;
  model.name = "m";
  model.exec_time_seconds = 1.0;
  DataStructureSpec ds;
  ds.name = "A";
  ds.size_bytes = 4096;
  StreamingSpec s;
  s.element_count = 1 << 20;
  ds.patterns.push_back(s);
  model.structures.push_back(ds);

  const auto r = calc.try_for_model(model);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kDeadlineExceeded);
}

TEST(TotalityEcc, DenormalStepSweepIsResourceLimit) {
  ModelSpec model;
  model.name = "m";
  model.exec_time_seconds = 1.0;
  DataStructureSpec ds;
  ds.name = "A";
  ds.size_bytes = 4096;
  StreamingSpec s;
  s.element_count = 512;
  ds.patterns.push_back(s);
  model.structures.push_back(ds);

  const EccTradeoffExplorer explorer(Machine::with_cache(small_cache()),
                                     model);
  EccSweepConfig config;
  config.step = 1e-12;  // 3e11 points over the default 0..30% range
  const auto r = explorer.try_sweep(config);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().kind, ErrorKind::kResourceLimit);
}

#undef EXPECT_TOTAL_ERROR

}  // namespace
}  // namespace dvf
