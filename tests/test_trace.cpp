// Unit tests for the trace substrate: registry, recorders, aligned buffers.
#include "dvf/trace/aligned_buffer.hpp"
#include "dvf/trace/recorder.hpp"
#include "dvf/trace/registry.hpp"

#include <gtest/gtest.h>

#include "dvf/common/error.hpp"

namespace dvf {
namespace {

TEST(Registry, RegistersAndLooksUp) {
  DataStructureRegistry registry;
  int dummy[16] = {};
  const DsId id = registry.register_structure("A", dummy, sizeof(dummy),
                                              sizeof(int));
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.info(id).name, "A");
  EXPECT_EQ(registry.info(id).element_count(), 16u);
  EXPECT_EQ(registry.find("A"), std::optional<DsId>(id));
  EXPECT_FALSE(registry.find("B").has_value());
}

TEST(Registry, AttributesAddressesToOwners) {
  DataStructureRegistry registry;
  double a[8] = {};
  double b[8] = {};
  const DsId ida = registry.register_structure("a", a, sizeof(a), 8);
  const DsId idb = registry.register_structure("b", b, sizeof(b), 8);
  EXPECT_EQ(registry.attribute(reinterpret_cast<std::uintptr_t>(&a[3])), ida);
  EXPECT_EQ(registry.attribute(reinterpret_cast<std::uintptr_t>(&b[7])), idb);
  EXPECT_EQ(registry.attribute(0), kNoDs);
}

TEST(Registry, RejectsInvalidRegistrations) {
  DataStructureRegistry registry;
  int dummy[4] = {};
  EXPECT_THROW(registry.register_structure("", dummy, 16, 4),
               InvalidArgumentError);
  EXPECT_THROW(registry.register_structure("x", dummy, 0, 4),
               InvalidArgumentError);
  EXPECT_THROW(registry.register_structure("x", dummy, 16, 0),
               InvalidArgumentError);
  EXPECT_THROW(registry.register_structure("x", dummy, 15, 4),
               InvalidArgumentError);
  (void)registry.register_structure("x", dummy, 16, 4);
  EXPECT_THROW(registry.register_structure("x", dummy, 16, 4),
               InvalidArgumentError);
}

TEST(CountingRecorder, TalliesPerStructure) {
  CountingRecorder rec;
  rec.on_load(0, 0, 8);
  rec.on_load(0, 8, 8);
  rec.on_store(0, 0, 8);
  rec.on_load(2, 0, 8);
  EXPECT_EQ(rec.counts(0).loads, 2u);
  EXPECT_EQ(rec.counts(0).stores, 1u);
  EXPECT_EQ(rec.counts(1).total(), 0u);
  EXPECT_EQ(rec.counts(2).loads, 1u);
  EXPECT_EQ(rec.total_references(), 4u);
}

TEST(TraceBuffer, RecordsInOrder) {
  TraceBuffer buffer;
  buffer.on_load(1, 100, 4);
  buffer.on_store(2, 200, 8);
  ASSERT_EQ(buffer.records().size(), 2u);
  EXPECT_EQ(buffer.records()[0], (MemoryRecord{100, 4, 1, false}));
  EXPECT_EQ(buffer.records()[1], (MemoryRecord{200, 8, 2, true}));
  buffer.clear();
  EXPECT_TRUE(buffer.records().empty());
}

TEST(TeeRecorder, FansOut) {
  CountingRecorder a;
  TraceBuffer b;
  TeeRecorder tee(a, b);
  tee.on_load(0, 0, 8);
  tee.on_store(1, 8, 8);
  EXPECT_EQ(a.total_references(), 2u);
  EXPECT_EQ(b.records().size(), 2u);
}

TEST(AlignedBuffer, PageAlignedAndZeroed) {
  AlignedBuffer<double> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 4096, 0u);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(buf.size_bytes(), 8000u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], 0.0);
  }
}

TEST(AlignedBuffer, AddressOfIsConsistent) {
  AlignedBuffer<std::uint32_t> buf(16);
  EXPECT_EQ(buf.address_of(3) - buf.address_of(0), 12u);
  EXPECT_EQ(buf.address_of(0), reinterpret_cast<std::uintptr_t>(buf.data()));
}

TEST(AlignedBuffer, RejectsZeroSize) {
  EXPECT_THROW(AlignedBuffer<int>(0), InvalidArgumentError);
}

}  // namespace
}  // namespace dvf
