// Tests for trace serialization: round-trip fidelity, format validation,
// and replay equivalence (serialized trace simulates identically to the
// live run).
#include "dvf/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/error.hpp"
#include "dvf/trace/trace_reader.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/machine/cache_config.hpp"

namespace dvf {
namespace {

TEST(TraceIo, RoundTripsStructuresAndRecords) {
  DataStructureRegistry registry;
  double a[8] = {};
  int b[16] = {};
  (void)registry.register_structure("alpha", a, sizeof(a), 8);
  (void)registry.register_structure("beta", b, sizeof(b), 4);

  std::vector<MemoryRecord> records = {
      {0x1000, 8, 0, false},
      {0x2000, 4, 1, true},
      {0x3000, 2, kNoDs, false},
  };

  std::stringstream stream;
  write_trace(stream, registry, records);
  const TraceFile trace = read_trace(stream);

  ASSERT_EQ(trace.structures.size(), 2u);
  EXPECT_EQ(trace.structures[0].name, "alpha");
  EXPECT_EQ(trace.structures[0].size_bytes, sizeof(a));
  EXPECT_EQ(trace.structures[1].element_bytes, 4u);
  ASSERT_EQ(trace.records.size(), 3u);
  EXPECT_EQ(trace.records[0], records[0]);
  EXPECT_EQ(trace.records[1], records[1]);
  EXPECT_EQ(trace.records[2], records[2]);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  DataStructureRegistry registry;
  std::stringstream stream;
  write_trace(stream, registry, {});
  const TraceFile trace = read_trace(stream);
  EXPECT_TRUE(trace.structures.empty());
  EXPECT_TRUE(trace.records.empty());
}

TEST(TraceIo, RejectsMalformedStreams) {
  {
    std::stringstream bad("not a trace at all");
    EXPECT_THROW((void)read_trace(bad), Error);
  }
  {
    // Valid magic, then truncation.
    std::stringstream truncated;
    truncated.write("DVFT", 4);
    EXPECT_THROW((void)read_trace(truncated), Error);
  }
  {
    // Records referencing an unknown structure id.
    DataStructureRegistry registry;
    int x[4] = {};
    (void)registry.register_structure("x", x, sizeof(x), 4);
    std::stringstream stream;
    write_trace(stream, registry, {{0, 4, 7, false}});
    EXPECT_THROW((void)read_trace(stream), Error);
  }
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_file("/nonexistent/path.dvft"), Error);
}

TEST(TraceIo, ByteSwappedHeaderIsRejectedWithAClearError) {
  // A version field that decodes only with the opposite byte order marks a
  // trace written by a host of foreign endianness (v1 is producer-native).
  // The reader must say so instead of misreading every following field or
  // reporting a baffling "unsupported version 16777216".
  for (const char low : {'\x01', '\x02'}) {
    std::stringstream stream;
    write_trace(stream, DataStructureRegistry{}, {}, TraceFormat::kV2);
    std::string bytes = stream.str();
    bytes[4] = '\x00';
    bytes[5] = '\x00';
    bytes[6] = '\x00';
    bytes[7] = low;  // u32 version written big-endian
    std::stringstream swapped(bytes);
    try {
      TraceReader reader(swapped);
      FAIL() << "byte-swapped header was accepted as version "
             << reader.version();
    } catch (const Error& err) {
      EXPECT_NE(std::string(err.what()).find("byte-swapped"),
                std::string::npos)
          << err.what();
    }
  }
}

// --- Format v2 -------------------------------------------------------------

std::vector<MemoryRecord> v2_sample_records() {
  return {
      {0x1000, 8, 0, false},
      {0x1008, 8, 0, false},   // constant stride: candidate run
      {0x1010, 8, 0, false},
      {0x2000, 4, 1, true},
      {0x0800, 2, kNoDs, false},  // negative delta
      {0x0800, 2, kNoDs, false},  // repeat (delta 0)
  };
}

DataStructureRegistry v2_sample_registry() {
  DataStructureRegistry registry;
  static double a[8];
  static int b[16];
  (void)registry.register_structure("alpha", a, sizeof(a), 8);
  (void)registry.register_structure("beta", b, sizeof(b), 4);
  return registry;
}

std::string serialized(const DataStructureRegistry& registry,
                       const std::vector<MemoryRecord>& records,
                       TraceFormat format) {
  std::stringstream stream;
  write_trace(stream, registry, records, format);
  return stream.str();
}

TEST(TraceIoV2, BothFormatsRoundTripTheSameRecords) {
  const auto registry = v2_sample_registry();
  const auto records = v2_sample_records();
  for (const TraceFormat format : {TraceFormat::kV1, TraceFormat::kV2}) {
    std::stringstream stream;
    write_trace(stream, registry, records, format);
    const TraceFile trace = read_trace(stream);
    ASSERT_EQ(trace.structures.size(), 2u);
    EXPECT_EQ(trace.structures[0].name, "alpha");
    ASSERT_EQ(trace.records.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(trace.records[i], records[i]) << "record " << i;
    }
  }
}

TEST(TraceIoV2, HeaderIsExplicitlyLittleEndian) {
  const std::string bytes =
      serialized(DataStructureRegistry{}, {}, TraceFormat::kV2);
  // magic, u32le version 2, u32le structure count 0, u64le record count 0.
  ASSERT_EQ(bytes.size(), 20u);
  EXPECT_EQ(bytes.substr(0, 4), "DVFT");
  const std::string le2({'\x02', '\x00', '\x00', '\x00'});
  EXPECT_EQ(bytes.substr(4, 4), le2);
  EXPECT_EQ(bytes.substr(8, 4), std::string(4, '\0'));
  EXPECT_EQ(bytes.substr(12, 8), std::string(8, '\0'));
}

TEST(TraceIoV2, DeltaEncodingBeatsV1OnSequentialStreams) {
  // The acceptance corpus: a long sequential kernel-like sweep (constant
  // stride, cycling structures, periodic stores) must compress >= 3x.
  DataStructureRegistry registry;
  static char blob[64];
  for (int i = 0; i < 8; ++i) {
    (void)registry.register_structure("s" + std::to_string(i), blob,
                                      sizeof(blob), 8);
  }
  std::vector<MemoryRecord> records;
  std::uint64_t addr = 1 << 20;
  for (int i = 0; i < 100000; ++i) {
    records.push_back({addr, 8, static_cast<DsId>(i % 8), (i & 7) == 0});
    addr += 8;
  }
  const std::string v1 = serialized(registry, records, TraceFormat::kV1);
  const std::string v2 = serialized(registry, records, TraceFormat::kV2);
  EXPECT_GE(v1.size(), 3 * v2.size())
      << "v1=" << v1.size() << " v2=" << v2.size();
}

TEST(TraceIoV2, RunLengthCollapsesConstantStrideSweeps) {
  // A single-structure unit-stride sweep is the best case: whole chunks
  // collapse into run ops, far beyond the 3x floor.
  DataStructureRegistry registry;
  static char blob[64];
  (void)registry.register_structure("s", blob, sizeof(blob), 8);
  std::vector<MemoryRecord> records;
  for (int i = 0; i < 100000; ++i) {
    records.push_back({static_cast<std::uint64_t>(i) * 8, 8, 0, false});
  }
  const std::string v1 = serialized(registry, records, TraceFormat::kV1);
  const std::string v2 = serialized(registry, records, TraceFormat::kV2);
  EXPECT_GE(v1.size(), 1000 * v2.size());
  std::stringstream stream(v2);
  const TraceFile trace = read_trace(stream);
  ASSERT_EQ(trace.records.size(), records.size());
  EXPECT_EQ(trace.records.front(), records.front());
  EXPECT_EQ(trace.records.back(), records.back());
}

TEST(TraceIoV2, MultiChunkStreamsRoundTrip) {
  // More records than one writer chunk (65536), so the stream carries
  // several self-contained chunks; make neighbours differ so nothing
  // collapses into runs.
  std::vector<MemoryRecord> records;
  records.reserve(70000);
  for (int i = 0; i < 70000; ++i) {
    records.push_back({static_cast<std::uint64_t>(i * 131) & 0xFFFFF,
                       static_cast<std::uint32_t>(1 + (i % 9)), kNoDs,
                       (i & 3) == 0});
  }
  std::stringstream stream;
  write_trace(stream, DataStructureRegistry{}, records);
  const TraceFile trace = read_trace(stream);
  ASSERT_EQ(trace.records.size(), records.size());
  EXPECT_EQ(trace.records[65535], records[65535]);
  EXPECT_EQ(trace.records[65536], records[65536]);
  EXPECT_EQ(trace.records.back(), records.back());
}

TEST(TraceIoV2, AddressWraparoundSurvivesZigzagDeltas) {
  const std::vector<MemoryRecord> records = {
      {~std::uint64_t{0} - 15, 8, kNoDs, false},
      {8, 8, kNoDs, false},          // wraps past zero
      {~std::uint64_t{0} - 7, 4, kNoDs, true},  // wraps back
  };
  std::stringstream stream;
  write_trace(stream, DataStructureRegistry{}, records);
  const TraceFile trace = read_trace(stream);
  ASSERT_EQ(trace.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(trace.records[i], records[i]) << "record " << i;
  }
}

TEST(TraceIoV2, TruncationAtEveryPrefixLengthIsDetected) {
  const std::string bytes =
      serialized(v2_sample_registry(), v2_sample_records(), TraceFormat::kV2);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::stringstream stream(bytes.substr(0, len));
    EXPECT_THROW((void)read_trace(stream), Error) << "prefix length " << len;
  }
  std::stringstream whole(bytes);
  EXPECT_NO_THROW((void)read_trace(whole));
}

TEST(TraceIoV2, CorruptChunksAreRejected) {
  // No structures, so the first chunk header starts at byte 20 and the
  // first op byte at 28.
  const std::string bytes =
      serialized(DataStructureRegistry{}, v2_sample_records(),
                 TraceFormat::kV2);
  {
    std::string reserved_bits = bytes;
    reserved_bits[28] = static_cast<char>(
        static_cast<unsigned char>(reserved_bits[28]) | 0xF0);
    std::stringstream stream(reserved_bits);
    EXPECT_THROW((void)read_trace(stream), Error);
  }
  {
    std::string huge_chunk = bytes;  // chunk record count -> 2^31
    huge_chunk[20] = '\x00';
    huge_chunk[21] = '\x00';
    huge_chunk[22] = '\x00';
    huge_chunk[23] = '\x80';
    std::stringstream stream(huge_chunk);
    EXPECT_THROW((void)read_trace(stream), Error);
  }
  {
    std::string empty_chunk = bytes;  // chunk record count -> 0
    empty_chunk[20] = '\x00';
    empty_chunk[21] = '\x00';
    empty_chunk[22] = '\x00';
    empty_chunk[23] = '\x00';
    std::stringstream stream(empty_chunk);
    EXPECT_THROW((void)read_trace(stream), Error);
  }
  {
    std::string bad_version = bytes;
    bad_version[4] = '\x09';
    std::stringstream stream(bad_version);
    EXPECT_THROW((void)read_trace(stream), Error);
  }
  {
    // ds id out of range: encoded as varint ds+1, patched to reference a
    // structure that does not exist.
    DataStructureRegistry registry;
    static int x[4];
    (void)registry.register_structure("x", x, sizeof(x), 4);
    std::stringstream stream;
    write_trace(stream, registry, {{0, 4, 7, false}}, TraceFormat::kV2);
    EXPECT_THROW((void)read_trace(stream), Error);
  }
}

TEST(TraceIoV2, StreamingReaderMatchesMaterializedRead) {
  const auto registry = v2_sample_registry();
  std::vector<MemoryRecord> records;
  for (int i = 0; i < 70000; ++i) {
    records.push_back({static_cast<std::uint64_t>(i) * 16, 8,
                       static_cast<DsId>(i % 2), (i % 3) == 0});
  }
  std::stringstream stream;
  write_trace(stream, registry, records);

  TraceReader reader(stream);
  EXPECT_EQ(reader.version(), 2u);
  EXPECT_EQ(reader.total_records(), records.size());
  ASSERT_EQ(reader.structures().size(), 2u);
  std::vector<MemoryRecord> streamed;
  while (!reader.done()) {
    const auto chunk = reader.next_chunk();
    EXPECT_FALSE(chunk.empty());
    streamed.insert(streamed.end(), chunk.begin(), chunk.end());
  }
  EXPECT_TRUE(reader.next_chunk().empty());  // idempotent at end
  ASSERT_EQ(streamed.size(), records.size());
  EXPECT_EQ(streamed[0], records[0]);
  EXPECT_EQ(streamed[65536], records[65536]);
  EXPECT_EQ(streamed.back(), records.back());
}

TEST(TraceIoV2, StreamingReaderHandlesV1Too) {
  const auto registry = v2_sample_registry();
  const auto records = v2_sample_records();
  std::stringstream stream;
  write_trace(stream, registry, records, TraceFormat::kV1);
  TraceReader reader(stream);
  EXPECT_EQ(reader.version(), 1u);
  const auto chunk = reader.next_chunk();
  ASSERT_EQ(chunk.size(), records.size());
  EXPECT_EQ(chunk[0], records[0]);
  EXPECT_TRUE(reader.done());
}

TEST(TraceIo, ReplayedTraceSimulatesIdenticallyToLiveRun) {
  kernels::KernelCaseAdapter<kernels::VectorMultiply> vm(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 500});

  // Live run through the simulator.
  CacheSimulator live(caches::small_verification());
  vm.run_traced(live);

  // Buffered run, serialized and replayed.
  TraceBuffer buffer;
  vm.run_buffered(buffer);
  std::stringstream stream;
  write_trace(stream, vm.registry(), buffer.records());
  const TraceFile trace = read_trace(stream);

  CacheSimulator replay(caches::small_verification());
  for (const MemoryRecord& record : trace.records) {
    replay.access(record.address, record.size, record.is_write, record.ds);
  }
  replay.flush();

  for (const auto& ds : vm.model_spec().structures) {
    const auto id = *vm.registry().find(ds.name);
    EXPECT_EQ(live.stats(id).misses, replay.stats(id).misses) << ds.name;
    EXPECT_EQ(live.stats(id).writebacks, replay.stats(id).writebacks)
        << ds.name;
  }
}

}  // namespace
}  // namespace dvf
