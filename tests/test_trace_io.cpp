// Tests for trace serialization: round-trip fidelity, format validation,
// and replay equivalence (serialized trace simulates identically to the
// live run).
#include "dvf/trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/common/error.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/kernels/vm.hpp"
#include "dvf/machine/cache_config.hpp"

namespace dvf {
namespace {

TEST(TraceIo, RoundTripsStructuresAndRecords) {
  DataStructureRegistry registry;
  double a[8] = {};
  int b[16] = {};
  (void)registry.register_structure("alpha", a, sizeof(a), 8);
  (void)registry.register_structure("beta", b, sizeof(b), 4);

  std::vector<MemoryRecord> records = {
      {0x1000, 8, 0, false},
      {0x2000, 4, 1, true},
      {0x3000, 2, kNoDs, false},
  };

  std::stringstream stream;
  write_trace(stream, registry, records);
  const TraceFile trace = read_trace(stream);

  ASSERT_EQ(trace.structures.size(), 2u);
  EXPECT_EQ(trace.structures[0].name, "alpha");
  EXPECT_EQ(trace.structures[0].size_bytes, sizeof(a));
  EXPECT_EQ(trace.structures[1].element_bytes, 4u);
  ASSERT_EQ(trace.records.size(), 3u);
  EXPECT_EQ(trace.records[0], records[0]);
  EXPECT_EQ(trace.records[1], records[1]);
  EXPECT_EQ(trace.records[2], records[2]);
}

TEST(TraceIo, EmptyTraceRoundTrips) {
  DataStructureRegistry registry;
  std::stringstream stream;
  write_trace(stream, registry, {});
  const TraceFile trace = read_trace(stream);
  EXPECT_TRUE(trace.structures.empty());
  EXPECT_TRUE(trace.records.empty());
}

TEST(TraceIo, RejectsMalformedStreams) {
  {
    std::stringstream bad("not a trace at all");
    EXPECT_THROW((void)read_trace(bad), Error);
  }
  {
    // Valid magic, then truncation.
    std::stringstream truncated;
    truncated.write("DVFT", 4);
    EXPECT_THROW((void)read_trace(truncated), Error);
  }
  {
    // Records referencing an unknown structure id.
    DataStructureRegistry registry;
    int x[4] = {};
    (void)registry.register_structure("x", x, sizeof(x), 4);
    std::stringstream stream;
    write_trace(stream, registry, {{0, 4, 7, false}});
    EXPECT_THROW((void)read_trace(stream), Error);
  }
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW((void)read_trace_file("/nonexistent/path.dvft"), Error);
}

TEST(TraceIo, ReplayedTraceSimulatesIdenticallyToLiveRun) {
  kernels::KernelCaseAdapter<kernels::VectorMultiply> vm(
      "VM", "dense", kernels::VectorMultiply::Config{.iterations = 500});

  // Live run through the simulator.
  CacheSimulator live(caches::small_verification());
  vm.run_traced(live);

  // Buffered run, serialized and replayed.
  TraceBuffer buffer;
  vm.run_buffered(buffer);
  std::stringstream stream;
  write_trace(stream, vm.registry(), buffer.records());
  const TraceFile trace = read_trace(stream);

  CacheSimulator replay(caches::small_verification());
  for (const MemoryRecord& record : trace.records) {
    replay.access(record.address, record.size, record.is_write, record.ds);
  }
  replay.flush();

  for (const auto& ds : vm.model_spec().structures) {
    const auto id = *vm.registry().find(ds.name);
    EXPECT_EQ(live.stats(id).misses, replay.stats(id).misses) << ds.name;
    EXPECT_EQ(live.stats(id).writebacks, replay.stats(id).writebacks)
        << ds.name;
  }
}

}  // namespace
}  // namespace dvf
