// Unit tests for the unit conversions behind N_error (Eq. 1).
#include "dvf/common/units.hpp"

#include <gtest/gtest.h>

namespace dvf {
namespace {

TEST(Units, ByteLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(Units, BytesToMegabits) {
  // 1 MB (decimal-ish of bits): 125000 bytes = 1e6 bits = 1 Mbit.
  EXPECT_DOUBLE_EQ(bytes_to_megabits(125000.0), 1.0);
  EXPECT_DOUBLE_EQ(bytes_to_megabits(0.0), 0.0);
}

TEST(Units, ExpectedErrorsMatchesHandComputation) {
  // 1 Mbit of memory exposed for 3600 s (1 h) at 1e9 FIT:
  // N = 1e9 * (1 h / 1e9 h) * 1 Mbit = 1 error.
  EXPECT_DOUBLE_EQ(expected_errors(1e9, 3600.0, 125000.0), 1.0);
}

TEST(Units, ExpectedErrorsLinearInEachFactor) {
  const double base = expected_errors(5000.0, 10.0, 1_MiB);
  EXPECT_DOUBLE_EQ(expected_errors(10000.0, 10.0, 1_MiB), 2.0 * base);
  EXPECT_DOUBLE_EQ(expected_errors(5000.0, 20.0, 1_MiB), 2.0 * base);
  EXPECT_DOUBLE_EQ(expected_errors(5000.0, 10.0, 2.0 * 1_MiB), 2.0 * base);
}

TEST(Units, TypicalMagnitudesAreTiny) {
  // 5000 FIT/Mbit over a 1-second run of a 1 MiB structure: far below one
  // expected error — which is why DVF multiplies in N_ha.
  const double n = expected_errors(5000.0, 1.0, 1_MiB);
  EXPECT_GT(n, 0.0);
  EXPECT_LT(n, 1e-6);
}

}  // namespace
}  // namespace dvf
