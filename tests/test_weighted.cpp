// Tests for the weighted DVF refinement (§III-A).
#include "dvf/dvf/weighted.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dvf {
namespace {

StructureDvf sample() {
  StructureDvf s;
  s.name = "A";
  s.n_error = 4.0;
  s.n_ha = 9.0;
  s.dvf = 36.0;
  return s;
}

TEST(WeightedDvf, UnitWeightsReproducePlainDvf) {
  EXPECT_DOUBLE_EQ(weighted_dvf(sample(), {}), sample().dvf);
}

TEST(WeightedDvf, ZeroWeightRemovesATerm) {
  EXPECT_DOUBLE_EQ(weighted_dvf(sample(), {.error_weight = 0.0}), 9.0);
  EXPECT_DOUBLE_EQ(weighted_dvf(sample(), {.access_weight = 0.0}), 4.0);
  EXPECT_DOUBLE_EQ(
      weighted_dvf(sample(), {.error_weight = 0.0, .access_weight = 0.0}),
      1.0);
}

TEST(WeightedDvf, FractionalWeights) {
  EXPECT_DOUBLE_EQ(
      weighted_dvf(sample(), {.error_weight = 0.5, .access_weight = 0.5}),
      2.0 * 3.0);
}

TEST(WeightedDvf, PreservesOrderingForEqualWeights) {
  StructureDvf small = sample();
  StructureDvf big = sample();
  big.n_ha *= 10.0;
  for (const double w : {0.5, 1.0, 2.0}) {
    EXPECT_LT(weighted_dvf(small, {w, w}), weighted_dvf(big, {w, w}));
  }
}

TEST(WeightedDvf, RejectsNegativeWeights) {
  EXPECT_THROW((void)weighted_dvf(sample(), {.error_weight = -1.0}),
               InvalidArgumentError);
}

TEST(WeightedApplicationDvf, SumsWeightedStructures) {
  ApplicationDvf app;
  app.structures.push_back(sample());
  app.structures.push_back(sample());
  app.structures[1].n_ha = 16.0;
  const DvfWeights weights{.error_weight = 1.0, .access_weight = 0.5};
  EXPECT_DOUBLE_EQ(weighted_application_dvf(app, weights),
                   4.0 * 3.0 + 4.0 * 4.0);
}

}  // namespace
}  // namespace dvf
