// dvfc — command-line front end for the DVF library.
//
//   dvfc check <file>... [--json]             validate model files
//                                             (fail-fast: first error each)
//   dvfc lint <file>... [--json] [--werror]   collect ALL diagnostics plus
//                                             model-sanity lint rules
//   dvfc analyze <file>... [--json] [--werror] [--threads N]
//                                             semantic analysis: provable
//                                             N_ha/DVF bounds, A3xx verdicts
//                                             and a canonical model hash
//   dvfc fmt <file>                           print canonical formatting
//   dvfc eval <file> [--model N] [--machine N] [--csv]
//                                             evaluate models on machines
//   dvfc caches <file> --model N              sweep the paper's four
//                                             profiling caches
//   dvfc ecc <file> --model N [--machine N]   ECC/performance trade-off
//   dvfc kernels [--suite verification|profiling] [--threads N]
//                                             DVF-profile the built-in
//                                             kernel suite (N workers; 0 =
//                                             DVF_THREADS env or hardware)
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "dvf/common/budget.hpp"
#include "dvf/common/error.hpp"
#include "dvf/common/failpoint.hpp"
#include "dvf/common/math.hpp"
#include "dvf/common/robust_io.hpp"
#include "dvf/dsl/analysis.hpp"
#include "dvf/dsl/analyzer.hpp"
#include "dvf/dsl/diagnostics.hpp"
#include "dvf/dsl/lint.hpp"
#include "dvf/dsl/parser.hpp"
#include "dvf/dsl/printer.hpp"
#include "dvf/dvf/calculator.hpp"
#include "dvf/dvf/ecc.hpp"
#include "dvf/cachesim/cache_simulator.hpp"
#include "dvf/cachesim/replacement.hpp"
#include "dvf/cachesim/sharded_replay.hpp"
#include "dvf/dvf/inference.hpp"
#include "dvf/kernels/injection_campaign.hpp"
#include "dvf/kernels/suite.hpp"
#include "dvf/obs/obs.hpp"
#include "dvf/obs/trace_export.hpp"
#include "dvf/patterns/estimate.hpp"
#include "dvf/machine/cache_config.hpp"
#include "dvf/report/table.hpp"
#include "dvf/serve/server.hpp"
#include "dvf/serve/signal_guard.hpp"
#include "dvf/trace/trace_io.hpp"
#include "dvf/trace/trace_reader.hpp"

namespace {

/// Malformed flag value. Thrown by the option parsers and caught in
/// run_command, so bad usage exits with code 2 through normal control flow
/// (stack unwinding, main's observability handling) instead of std::exit.
struct BadUsage {
  std::string message;
};

/// Wall-clock deadline for model evaluation, shared by every calculator the
/// running command creates (--deadline S). Commands attach it via
/// apply_budget; nullptr (no --deadline) keeps the process-default limits.
dvf::EvalBudget* g_eval_budget = nullptr;

dvf::DvfCalculator make_calculator(dvf::Machine machine) {
  dvf::DvfCalculator calc(std::move(machine));
  calc.set_budget(g_eval_budget);
  return calc;
}

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.count(name) != 0; }
  std::string option(const std::string& name, const std::string& fallback = "")
      const {
    const auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
};

/// Boolean flags never consume a following value, so `dvfc campaign --json
/// VM` keeps VM as the positional kernel name. `metrics` is boolean-style:
/// its optional mode is attached with `=` (--metrics=json).
bool is_boolean_flag(const std::string& name) {
  return name == "json" || name == "werror" || name == "csv" ||
         name == "resume" || name == "metrics" || name == "stdio";
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc > 1) {
    args.command = argv[1];
  }
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string name = arg.substr(2);
      const std::size_t eq = name.find('=');
      if (eq != std::string::npos) {
        // --name=value never consumes the next argument.
        args.options[name.substr(0, eq)] = name.substr(eq + 1);
      } else if (!is_boolean_flag(name) && i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        args.options[name] = argv[++i];
      } else {
        args.options[name] = "";
      }
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

/// The global observability options (docs/observability.md), accepted by
/// every subcommand and removed from the option map before the per-command
/// flag audit. Trace and metrics output never mixes into a command's stdout:
/// the trace goes to its file, metrics go to stderr.
struct ObsRequest {
  std::string trace_path;   ///< --trace=FILE: Chrome trace-event JSON
  bool metrics = false;     ///< --metrics: end-of-run summary table
  bool metrics_json = false;  ///< --metrics=json: one JSON object line
  bool valid = true;

  [[nodiscard]] bool active() const {
    return !trace_path.empty() || metrics;
  }
};

ObsRequest extract_obs_options(Args& args) {
  ObsRequest request;
  if (const auto it = args.options.find("trace");
      it != args.options.end()) {
    request.trace_path = it->second;
    args.options.erase(it);
    if (request.trace_path.empty()) {
      std::cerr << "dvfc: --trace needs a file path (--trace=FILE)\n";
      request.valid = false;
    }
  }
  if (const auto it = args.options.find("metrics"); it != args.options.end()) {
    request.metrics = true;
    request.metrics_json = it->second == "json";
    if (!it->second.empty() && !request.metrics_json) {
      std::cerr << "dvfc: --metrics accepts only '=json', got '" << it->second
                << "'\n";
      request.valid = false;
    }
    args.options.erase(it);
  }
  return request;
}

/// The global evaluation-deadline option (--deadline S), accepted by every
/// subcommand and removed from the option map before the per-command flag
/// audit. A positive value arms a wall-clock EvalBudget shared by all model
/// evaluation the command performs; when it expires, evaluation degrades
/// into a classified deadline_exceeded error (exit 1) instead of running
/// unbounded.
struct DeadlineRequest {
  double seconds = 0.0;  ///< 0 = no deadline requested
  bool valid = true;
};

DeadlineRequest extract_deadline_option(Args& args) {
  DeadlineRequest request;
  const auto it = args.options.find("deadline");
  if (it == args.options.end()) {
    return request;
  }
  const std::string text = it->second;
  args.options.erase(it);
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (text.empty() || ec != std::errc() ||
      end != text.data() + text.size() || !std::isfinite(value) ||
      value <= 0.0) {
    std::cerr << "dvfc: --deadline expects a positive number of seconds, "
                 "got '" << text << "'\n";
    request.valid = false;
    return request;
  }
  request.seconds = value;
  return request;
}

/// The global fault-injection option (--failpoints SPEC, additive with the
/// DVF_FAILPOINTS env var; docs/resilience.md "Environment-fault
/// injection"), accepted by every subcommand and removed from the option
/// map before the per-command flag audit. A bad spec is bad usage (exit 2).
struct FailpointsRequest {
  bool valid = true;
};

FailpointsRequest extract_failpoints_option(Args& args) {
  FailpointsRequest request;
  std::string spec;
  if (const char* env = std::getenv("DVF_FAILPOINTS")) {
    spec = env;
  }
  if (const auto it = args.options.find("failpoints");
      it != args.options.end()) {
    if (it->second.empty()) {
      std::cerr << "dvfc: --failpoints needs a spec "
                   "(--failpoints 'point=action[@N|/K|%P]')\n";
      request.valid = false;
    } else {
      if (!spec.empty()) {
        spec += ';';
      }
      spec += it->second;
    }
    args.options.erase(it);
  }
  if (request.valid && !spec.empty()) {
    const auto configured = dvf::failpoint::configure(spec);
    if (!configured.ok()) {
      std::cerr << "dvfc: " << configured.error().message << "\n";
      request.valid = false;
    }
  }
  return request;
}

/// Flushes the requested observability outputs after the command ran.
/// Returns false when the trace file or metrics sink cannot be written.
bool emit_obs(const ObsRequest& request, const std::string& command) {
  bool ok = true;
  if (!request.trace_path.empty()) {
    try {
      dvf::obs::write_chrome_trace(request.trace_path, "dvfc " + command);
    } catch (const dvf::Error& err) {
      std::cerr << "dvfc: " << err.what() << "\n";
      ok = false;
    }
  }
  if (request.metrics) {
    const dvf::obs::MetricsSnapshot snapshot = dvf::obs::snapshot_metrics();
    std::string rendered;
    if (request.metrics_json) {
      rendered = dvf::obs::render_metrics_json(snapshot) + "\n";
    } else {
      rendered = dvf::obs::render_summary(snapshot,
                                          dvf::obs::snapshot_spans());
    }
    // Checked fd write (bounded EINTR retry) instead of unchecked iostream:
    // a broken stderr pipe surfaces as a failure, not silently lost metrics.
    std::cerr.flush();
    std::fflush(stderr);
    if (!dvf::io::write_all_fd(STDERR_FILENO, rendered.data(),
                               rendered.size())
             .ok()) {
      ok = false;
    }
  }
  return ok;
}

/// Per-command flag audit: an unrecognized --option is bad usage (exit 2),
/// not a silent no-op.
bool options_recognized(const Args& args) {
  static const std::map<std::string, std::vector<std::string>> kAllowed = {
      {"check", {"json"}},
      {"lint", {"json", "werror"}},
      {"analyze", {"json", "werror", "threads"}},
      {"fmt", {}},
      {"eval", {"model", "machine", "csv"}},
      {"caches", {"model"}},
      {"ecc", {"model", "machine"}},
      {"kernels", {"suite", "threads"}},
      {"trace", {"format"}},
      {"replay", {"assoc", "sets", "line", "threads", "policy"}},
      {"infer", {"assoc", "sets", "line"}},
      {"campaign",
       {"trials", "seed", "threads", "journal", "resume", "ci-width",
        "hang-factor", "batch", "json"}},
      {"serve",
       {"socket", "stdio", "workers", "queue", "cache", "max-request-bytes",
        "default-deadline", "max-deadline", "max-connections",
        "retry-after-ms", "drain-grace", "metrics-interval"}},
  };
  const auto it = kAllowed.find(args.command);
  if (it == kAllowed.end()) {
    return true;  // unknown command: the dispatcher reports usage
  }
  bool ok = true;
  for (const auto& [name, value] : args.options) {
    (void)value;
    if (std::find(it->second.begin(), it->second.end(), name) ==
        it->second.end()) {
      std::cerr << "dvfc: unknown option --" << name << " for '"
                << args.command << "'\n";
      ok = false;
    }
  }
  return ok;
}

// Parses a numeric option, raising BadUsage (exit 2 + a clear message)
// instead of the uncaught-exception abort std::stoul would produce on e.g.
// --threads abc. An option given without a value ("dvfc kernels --threads")
// parses as the fallback.
std::uint32_t numeric_option(const Args& args, const std::string& name,
                             std::uint32_t fallback) {
  const std::string text = args.option(name, "");
  if (text.empty()) {
    return fallback;
  }
  std::uint32_t value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || end != text.data() + text.size()) {
    throw BadUsage{"--" + name + " expects a non-negative integer, got '" +
                   text + "'"};
  }
  return value;
}

// As numeric_option, for non-negative real-valued options (--ci-width,
// --hang-factor).
double real_option(const Args& args, const std::string& name,
                   double fallback) {
  const std::string text = args.option(name, "");
  if (text.empty()) {
    return fallback;
  }
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || end != text.data() + text.size() || value < 0.0 ||
      !std::isfinite(value)) {
    throw BadUsage{"--" + name + " expects a non-negative number, got '" +
                   text + "'"};
  }
  return value;
}

// Parses --policy (replay), raising BadUsage on anything the simulator does
// not implement. An option given without a value parses as the default.
dvf::ReplacementPolicy policy_option(const Args& args) {
  const std::string text = args.option("policy", "");
  if (text.empty()) {
    return dvf::ReplacementPolicy::kLru;
  }
  const auto parsed = dvf::parse_policy(text);
  if (!parsed.has_value()) {
    throw BadUsage{"--policy expects lru, plru or rrip, got '" + text + "'"};
  }
  return *parsed;
}

// Parses --format (trace), raising BadUsage on unknown versions.
dvf::TraceFormat format_option(const Args& args) {
  const std::string text = args.option("format", "");
  if (text.empty() || text == "v2") {
    return dvf::TraceFormat::kV2;
  }
  if (text == "v1") {
    return dvf::TraceFormat::kV1;
  }
  throw BadUsage{"--format expects v1 or v2, got '" + text + "'"};
}

int usage() {
  std::cerr <<
      "usage: dvfc <command> [args]\n"
      "  check <file>... [--json]              validate model files\n"
      "                                        (fail-fast: reports the first\n"
      "                                        error per file)\n"
      "  lint <file>... [--json] [--werror]    report ALL diagnostics in one\n"
      "                                        pass, plus model-sanity lint\n"
      "                                        rules; --werror promotes\n"
      "                                        warnings to failures\n"
      "  analyze <file>... [--json] [--werror] [--threads N]\n"
      "                                        semantic analysis: provable\n"
      "                                        per-structure N_ha/DVF bounds,\n"
      "                                        A3xx verdicts and a canonical\n"
      "                                        64-bit model hash; --werror\n"
      "                                        promotes warnings to failures\n"
      "  fmt <file>                            canonical formatting\n"
      "  eval <file> [--model N] [--machine N] [--csv]\n"
      "  caches <file> --model N               profiling-cache sweep\n"
      "  ecc <file> --model N [--machine N]    ECC trade-off sweep\n"
      "  kernels [--suite verification|profiling] [--threads N]\n"
      "                                        N=0: DVF_THREADS env var or\n"
      "                                        hardware default; N=1: serial\n"
      "  campaign <kernel> [--trials N] [--seed N] [--threads N]\n"
      "           [--journal FILE] [--resume] [--ci-width X]\n"
      "           [--hang-factor X] [--batch N] [--json]\n"
      "                                        fault-injection campaign with\n"
      "                                        classified outcomes (masked/\n"
      "                                        sdc/due_*); --journal makes it\n"
      "                                        crash-resumable (--resume runs\n"
      "                                        only missing trials), --ci-width\n"
      "                                        stops structures whose Wilson\n"
      "                                        95% SDC CI converged\n"
      "  trace <kernel> <out.dvft> [--format v1|v2]\n"
      "                                        record a kernel's references\n"
      "                                        (v2: compact little-endian\n"
      "                                        chunked format, the default;\n"
      "                                        v1: legacy native-endian)\n"
      "  replay <in.dvft> [--assoc A --sets S --line L]\n"
      "         [--threads N] [--policy lru|plru|rrip]\n"
      "                                        simulate a saved trace,\n"
      "                                        streamed chunk by chunk;\n"
      "                                        N>1 shards cache sets across\n"
      "                                        workers (bit-identical stats,\n"
      "                                        N=0: DVF_THREADS env var or\n"
      "                                        hardware default)\n"
      "  infer <in.dvft> [--assoc A --sets S --line L]\n"
      "                                        derive pattern specs from a\n"
      "                                        trace and compare estimates\n"
      "                                        against its replay\n"
      "  serve [--socket PATH | --stdio] [--workers N] [--queue N]\n"
      "        [--cache N] [--max-request-bytes N] [--default-deadline S]\n"
      "        [--max-deadline S] [--max-connections N] [--retry-after-ms N]\n"
      "        [--drain-grace S] [--metrics-interval S]\n"
      "                                        evaluation daemon speaking\n"
      "                                        newline-delimited JSON over a\n"
      "                                        Unix socket (--stdio: stdin/\n"
      "                                        stdout pipe mode); bounded\n"
      "                                        queue with overload shedding,\n"
      "                                        per-request deadlines, LRU\n"
      "                                        compiled-model cache, graceful\n"
      "                                        SIGTERM drain (docs/serve.md)\n"
      "global options (every command):\n"
      "  --trace FILE                          write a Chrome trace-event\n"
      "                                        JSON file (chrome://tracing,\n"
      "                                        Perfetto) of the run\n"
      "  --metrics[=json]                      print end-of-run metrics to\n"
      "                                        stderr: a summary table, or\n"
      "                                        with =json one JSON object\n"
      "  --deadline S                          abort model evaluation with a\n"
      "                                        classified deadline_exceeded\n"
      "                                        error once S wall-clock\n"
      "                                        seconds have passed\n"
      "  --failpoints SPEC                     arm deterministic fault\n"
      "                                        injection on the tool's own\n"
      "                                        I/O and transport paths;\n"
      "                                        SPEC is 'point=action' entries\n"
      "                                        joined with ';' and optional\n"
      "                                        '@N' '/K' '%P[:SEED]' triggers\n"
      "                                        (also: DVF_FAILPOINTS env var;\n"
      "                                        docs/resilience.md)\n"
      "exit codes: 0 success; 1 model/campaign errors (for lint --werror:\n"
      "errors or warnings); 2 bad usage, unknown flags or unreadable input;\n"
      "3 internal error\n";
  return 2;
}

// Prints the combined diagnostics of several files as one JSON array.
void print_json_array(const std::vector<std::string>& objects) {
  std::cout << "[";
  for (std::size_t i = 0; i < objects.size(); ++i) {
    std::cout << (i == 0 ? "\n" : ",\n") << "  " << objects[i];
  }
  std::cout << (objects.empty() ? "]\n" : "\n]\n");
}

int cmd_check(const Args& args) {
  if (args.positional.empty()) {
    return usage();
  }
  const bool json = args.flag("json");
  int failures = 0;
  std::vector<std::string> objects;
  for (const std::string& file : args.positional) {
    if (json) {
      // Same accept set as compile_file (analyzer errors only, no lint
      // rules), machine-readable: report the first error-severity
      // diagnostic — exactly what compile would throw.
      std::ifstream in(file);
      if (!in) {
        std::cerr << "dvfc: cannot open model file: " << file << "\n";
        return 2;
      }
      std::ostringstream contents;
      contents << in.rdbuf();
      dvf::dsl::DiagnosticEngine diags;
      try {
        const auto ast = dvf::dsl::parse(contents.str());
        (void)dvf::dsl::analyze(ast, diags);
      } catch (const dvf::ParseError& err) {
        const char* code = err.code() != nullptr ? err.code()
                                                 : dvf::dsl::codes::kSyntax;
        diags.error(code, {err.line(), err.column(), err.length()},
                    err.what());
      }
      if (const dvf::dsl::Diagnostic* first = diags.first_error()) {
        objects.push_back(dvf::dsl::render_json_object(*first, file));
        ++failures;
      }
      continue;
    }
    try {
      const auto program = dvf::dsl::compile_file(file);
      std::cout << file << ": OK (" << program.models.size() << " model(s), "
                << program.machines.size() << " machine(s))\n";
    } catch (const dvf::Error& err) {
      std::cout << file << ": " << err.what() << "\n";
      ++failures;
    }
  }
  if (json) {
    print_json_array(objects);
  }
  return failures == 0 ? 0 : 1;
}

int cmd_lint(const Args& args) {
  if (args.positional.empty()) {
    return usage();
  }
  const bool json = args.flag("json");
  const bool werror = args.flag("werror");
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::vector<std::string> objects;
  for (const std::string& file : args.positional) {
    dvf::dsl::LintResult result;
    try {
      result = dvf::dsl::lint_file(file);
    } catch (const dvf::Error& err) {
      std::cerr << "dvfc: " << err.what() << "\n";
      return 2;
    }
    errors += result.errors;
    warnings += result.warnings;
    if (json) {
      for (const dvf::dsl::Diagnostic& d : result.diagnostics) {
        objects.push_back(dvf::dsl::render_json_object(d, file));
      }
    } else {
      std::cout << dvf::dsl::render_human(result.diagnostics, result.source,
                                          file);
      std::cout << file << ": " << result.errors << " error(s), "
                << result.warnings << " warning(s)\n";
    }
  }
  if (json) {
    print_json_array(objects);
  }
  return errors > 0 || (werror && warnings > 0) ? 1 : 0;
}

// Interval endpoint as JSON; infinite bounds (unbounded above) render as
// null so consumers never meet a bare `inf` token.
std::string json_bound(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

std::string json_interval(const dvf::analysis::Interval& iv) {
  return "{\"lo\":" + json_bound(iv.lo) + ",\"hi\":" + json_bound(iv.hi) +
         ",\"exact\":" + (iv.is_point() ? "true" : "false") + "}";
}

std::string hash_hex(std::uint64_t hash) {
  char text[19] = {};
  std::snprintf(text, sizeof text, "0x%016llx",
                static_cast<unsigned long long>(hash));
  return text;
}

// Human-readable interval: a point prints as "= x", an unbounded interval
// as "[lo, inf)".
std::string show_interval(const dvf::analysis::Interval& iv) {
  if (iv.is_point()) {
    return "= " + dvf::num(iv.lo);
  }
  return "in [" + dvf::num(iv.lo) + ", " +
         (std::isfinite(iv.hi) ? dvf::num(iv.hi) : "inf") +
         (std::isfinite(iv.hi) ? "]" : ")");
}

// One analyzed file as a JSON object: the canonical hash, per-model /
// per-structure bounds and verdicts, and the diagnostics. When the file
// failed to parse there is no report — only "diagnostics" appears.
std::string analyze_json_object(const std::string& file,
                                const dvf::dsl::SemanticAnalysis& result) {
  std::ostringstream out;
  out << "{\"file\":\"" << dvf::dsl::json_escape(file) << "\"";
  if (result.report.has_value()) {
    const dvf::analysis::AnalysisReport& report = *result.report;
    out << ",\"canonical_hash\":\"" << hash_hex(report.canonical_hash) << "\"";
    out << ",\"machines\":[";
    for (std::size_t i = 0; i < report.machines.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\""
          << dvf::dsl::json_escape(report.machines[i]) << "\"";
    }
    out << "],\"models\":[";
    for (std::size_t m = 0; m < report.models.size(); ++m) {
      const dvf::analysis::ModelBounds& model = report.models[m];
      out << (m == 0 ? "" : ",") << "{\"name\":\""
          << dvf::dsl::json_escape(model.name) << "\",\"dvf\":"
          << json_interval(model.dvf) << ",\"structures\":[";
      for (std::size_t s = 0; s < model.structures.size(); ++s) {
        const dvf::analysis::StructureBounds& ds = model.structures[s];
        bool exact = !ds.per_machine.empty();
        for (const auto& pm : ds.per_machine) {
          exact = exact && pm.exact;
        }
        out << (s == 0 ? "" : ",") << "{\"name\":\""
            << dvf::dsl::json_escape(ds.name) << "\""
            << ",\"size_bytes\":" << ds.size_bytes
            << ",\"n_ha\":" << json_interval(ds.n_ha)
            << ",\"dvf\":" << json_interval(ds.dvf)
            << ",\"exact\":" << (exact ? "true" : "false")
            << ",\"dead\":" << (ds.dead ? "true" : "false")
            << ",\"exceeds_all_shares\":"
            << (ds.exceeds_all_shares ? "true" : "false")
            << ",\"rejects_everywhere\":"
            << (ds.rejects_everywhere ? "true" : "false")
            << ",\"monotone_in_capacity\":"
            << (ds.monotone_in_capacity ? "true" : "false") << "}";
      }
      out << "]}";
    }
    out << "]";
  }
  out << ",\"clean\":" << (result.diagnostics.empty() ? "true" : "false");
  out << ",\"diagnostics\":[";
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    out << (i == 0 ? "" : ",")
        << dvf::dsl::render_json_object(result.diagnostics[i], file);
  }
  out << "]}";
  return out.str();
}

void print_analysis_report(const dvf::analysis::AnalysisReport& report) {
  for (const dvf::analysis::ModelBounds& model : report.models) {
    std::cout << "model " << model.name << ": DVF "
              << show_interval(model.dvf) << "\n";
    for (const dvf::analysis::StructureBounds& ds : model.structures) {
      std::cout << "  data " << ds.name << ": N_ha "
                << show_interval(ds.n_ha) << ", DVF "
                << show_interval(ds.dvf);
      if (ds.dead) {
        std::cout << " [dead]";
      }
      if (ds.exceeds_all_shares) {
        std::cout << " [exceeds-share]";
      }
      if (ds.rejects_everywhere && !ds.per_machine.empty()) {
        std::cout << " [rejects: "
                  << dvf::to_string(ds.per_machine.front().reject_kind)
                  << "]";
      }
      std::cout << "\n";
    }
  }
  std::cout << "canonical hash: " << hash_hex(report.canonical_hash) << "\n";
}

int cmd_analyze(const Args& args) {
  if (args.positional.empty()) {
    return usage();
  }
  const bool json = args.flag("json");
  const bool werror = args.flag("werror");
  dvf::analysis::AnalysisOptions options;
  options.threads = numeric_option(args, "threads", 1);
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::vector<std::string> objects;
  for (const std::string& file : args.positional) {
    dvf::dsl::SemanticAnalysis result;
    try {
      result = dvf::dsl::analyze_models_file(file, options);
    } catch (const dvf::Error& err) {
      std::cerr << "dvfc: " << err.what() << "\n";
      return 2;
    }
    errors += result.errors;
    warnings += result.warnings;
    if (json) {
      objects.push_back(analyze_json_object(file, result));
      continue;
    }
    std::cout << dvf::dsl::render_human(result.diagnostics, result.source,
                                        file);
    if (result.report.has_value()) {
      print_analysis_report(*result.report);
    }
    std::cout << file << ": " << result.errors << " error(s), "
              << result.warnings << " warning(s)\n";
  }
  if (json) {
    print_json_array(objects);
  }
  return errors > 0 || (werror && warnings > 0) ? 1 : 0;
}

int cmd_fmt(const Args& args) {
  if (args.positional.size() != 1) {
    return usage();
  }
  std::ifstream in(args.positional[0]);
  if (!in) {
    std::cerr << "dvfc: cannot open " << args.positional[0] << "\n";
    return 2;  // unreadable input, per the documented exit codes
  }
  std::ostringstream contents;
  contents << in.rdbuf();
  std::cout << dvf::dsl::print(dvf::dsl::parse(contents.str()));
  return 0;
}

void print_application(const dvf::ApplicationDvf& app, bool csv) {
  dvf::Table table({"structure", "S_d (bytes)", "N_ha", "N_error", "DVF"});
  for (const auto& s : app.structures) {
    table.add_row({s.name, dvf::num(s.size_bytes), dvf::num(s.n_ha),
                   dvf::num(s.n_error), dvf::num(s.dvf)});
  }
  table.add_row({"(application)", "", "", "", dvf::num(app.total)});
  std::cout << (csv ? table.to_csv() : table.to_text());
}

int cmd_eval(const Args& args) {
  if (args.positional.size() != 1) {
    return usage();
  }
  const auto program = dvf::dsl::compile_file(args.positional[0]);
  const std::string model_name = args.option("model");
  const std::string machine_name = args.option("machine");
  const bool csv = args.flag("csv");

  for (const dvf::ModelSpec& model : program.models) {
    if (!model_name.empty() && model.name != model_name) {
      continue;
    }
    for (const dvf::Machine& machine : program.machines) {
      if (!machine_name.empty() && machine.name != machine_name) {
        continue;
      }
      if (!csv) {
        std::cout << dvf::banner("model '" + model.name + "' on machine '" +
                                 machine.name + "'");
      }
      print_application(make_calculator(machine).for_model(model), csv);
    }
  }
  return 0;
}

int cmd_caches(const Args& args) {
  if (args.positional.size() != 1 || args.option("model").empty()) {
    return usage();
  }
  const auto program = dvf::dsl::compile_file(args.positional[0]);
  const dvf::ModelSpec& model = program.model(args.option("model"));

  std::vector<std::string> headers = {"structure"};
  const auto caches = dvf::caches::all_profiling();
  for (const auto& c : caches) {
    headers.push_back("DVF @" + c.name());
  }
  dvf::Table table(headers);
  std::vector<dvf::ApplicationDvf> results;
  for (const auto& cache : caches) {
    results.push_back(
        make_calculator(dvf::Machine::with_cache(cache)).for_model(model));
  }
  for (std::size_t s = 0; s < model.structures.size(); ++s) {
    std::vector<std::string> row = {model.structures[s].name};
    for (const auto& app : results) {
      row.push_back(dvf::num(app.structures[s].dvf));
    }
    table.add_row(std::move(row));
  }
  std::cout << table;
  return 0;
}

int cmd_ecc(const Args& args) {
  if (args.positional.size() != 1 || args.option("model").empty()) {
    return usage();
  }
  const auto program = dvf::dsl::compile_file(args.positional[0]);
  const dvf::ModelSpec& model = program.model(args.option("model"));
  const dvf::Machine machine =
      args.option("machine").empty()
          ? dvf::Machine::with_cache(dvf::caches::profiling_8mb())
          : program.machine(args.option("machine"));

  dvf::EccTradeoffExplorer explorer(machine, model);
  explorer.set_budget(g_eval_budget);
  dvf::Table table({"degradation_%", "DVF secded", "DVF chipkill"});
  dvf::EccSweepConfig secded;
  secded.scheme = dvf::EccScheme::kSecDed;
  dvf::EccSweepConfig chipkill;
  chipkill.scheme = dvf::EccScheme::kChipkill;
  const auto s = explorer.sweep(secded);
  const auto c = explorer.sweep(chipkill);
  for (std::size_t i = 0; i < s.size(); ++i) {
    table.add_row({dvf::num(100.0 * s[i].degradation, 3), dvf::num(s[i].dvf),
                   dvf::num(c[i].dvf)});
  }
  std::cout << table;
  return 0;
}

int cmd_kernels(const Args& args) {
  const std::string suite_name = args.option("suite", "verification");
  auto suite = suite_name == "profiling"
                   ? dvf::kernels::make_profiling_suite()
                   : dvf::kernels::make_verification_suite();
  // Kernels evaluate concurrently; --threads 1 restores fully serial timing
  // runs (wall-clock T is most faithful without co-runners). Default: the
  // DVF_THREADS env var, else the hardware thread count.
  const unsigned threads = numeric_option(args, "threads", 0);

  dvf::Table table({"kernel", "method", "T (s)", "DVF_a @8MB"});
  const dvf::DvfCalculator calc =
      make_calculator(dvf::Machine::with_cache(dvf::caches::profiling_8mb()));
  for (const auto& result :
       dvf::kernels::evaluate_suite(suite, calc, threads)) {
    table.add_row({result.kernel, result.method,
                   dvf::num(result.exec_time_seconds, 3),
                   dvf::num(result.dvf.total)});
  }
  std::cout << table;
  return 0;
}

int cmd_campaign(const Args& args) {
  if (args.positional.size() != 1) {
    return usage();
  }
  if (args.flag("resume") && args.option("journal").empty()) {
    std::cerr << "dvfc: --resume needs --journal FILE\n";
    return usage();
  }
  auto suite = dvf::kernels::make_extended_suite();
  dvf::kernels::KernelCase* kernel = nullptr;
  for (auto& candidate : suite) {
    if (candidate->name() == args.positional[0]) {
      kernel = candidate.get();
      break;
    }
  }
  if (kernel == nullptr) {
    std::cerr << "unknown kernel '" << args.positional[0]
              << "' (expected VM|CG|NB|MG|FT|MC|CGS)\n";
    return 1;
  }

  dvf::kernels::CampaignConfig config;
  config.trials_per_structure = numeric_option(args, "trials", 100);
  config.seed = numeric_option(args, "seed", 2014);
  config.threads = numeric_option(args, "threads", 0);
  config.hang_factor = real_option(args, "hang-factor", 8.0);
  config.ci_width = real_option(args, "ci-width", 0.0);
  config.batch_trials = numeric_option(args, "batch", 50);
  config.journal_path = args.option("journal");
  config.resume = args.flag("resume");

  const auto stats = dvf::kernels::run_injection_campaign(*kernel, config);

  if (args.flag("json")) {
    std::vector<std::string> objects;
    for (const auto& s : stats) {
      std::ostringstream out;
      out.precision(12);
      out << "{\"kernel\": \"" << kernel->name() << "\", \"structure\": \""
          << s.structure << "\", \"trials\": " << s.trials
          << ", \"injected\": " << s.injected << ", \"masked\": " << s.masked
          << ", \"sdc\": " << s.sdc
          << ", \"due_exception\": " << s.due_exception
          << ", \"due_hang\": " << s.due_hang
          << ", \"due_invalid\": " << s.due_invalid
          << ", \"corrupted\": " << s.corrupted
          << ", \"corruption_rate_injected\": " << s.corruption_rate_injected()
          << ", \"sdc_rate_injected\": " << s.sdc_rate_injected()
          << ", \"sdc_ci_half_width\": " << s.sdc_ci_half_width()
          << ", \"early_stopped\": " << (s.early_stopped ? "true" : "false")
          << "}";
      objects.push_back(out.str());
    }
    print_json_array(objects);
    return 0;
  }

  dvf::Table table({"structure", "trials", "injected", "masked", "sdc",
                    "due_exc", "due_hang", "due_inv", "sdc_rate|inj",
                    "ci95_half", "early"});
  for (const auto& s : stats) {
    table.add_row({s.structure, dvf::num(static_cast<double>(s.trials)),
                   dvf::num(static_cast<double>(s.injected)),
                   dvf::num(static_cast<double>(s.masked)),
                   dvf::num(static_cast<double>(s.sdc)),
                   dvf::num(static_cast<double>(s.due_exception)),
                   dvf::num(static_cast<double>(s.due_hang)),
                   dvf::num(static_cast<double>(s.due_invalid)),
                   dvf::num(s.sdc_rate_injected(), 4),
                   dvf::num(s.sdc_ci_half_width(), 4),
                   s.early_stopped ? "yes" : "no"});
  }
  std::cout << table;
  return 0;
}

int cmd_trace(const Args& args) {
  if (args.positional.size() != 2) {
    return usage();
  }
  const dvf::TraceFormat format = format_option(args);  // reject before work
  auto suite = dvf::kernels::make_extended_suite();
  for (auto& kernel : suite) {
    if (kernel->name() != args.positional[0]) {
      continue;
    }
    dvf::TraceBuffer buffer;
    kernel->run_buffered(buffer);
    dvf::write_trace_file(args.positional[1], kernel->registry(),
                          buffer.records(), format);
    std::cout << "wrote " << buffer.records().size() << " references ("
              << kernel->registry().size() << " structures) to "
              << args.positional[1] << "\n";
    return 0;
  }
  std::cerr << "unknown kernel '" << args.positional[0]
            << "' (expected VM|CG|NB|MG|FT|MC|CGS)\n";
  return 1;
}

int cmd_replay(const Args& args) {
  if (args.positional.size() != 1) {
    return usage();
  }
  const auto assoc = numeric_option(args, "assoc", 4);
  const auto sets = numeric_option(args, "sets", 64);
  const auto line = numeric_option(args, "line", 32);
  const auto threads = numeric_option(args, "threads", 1);
  const dvf::ReplacementPolicy policy = policy_option(args);
  const dvf::CacheConfig cache("replay", assoc, sets, line);

  // Streamed chunk by chunk: a multi-GB trace replays in O(chunk) memory.
  dvf::TraceReader reader(args.positional[0]);
  const auto structures = reader.structures();
  dvf::ShardedReplayer sim(cache, threads, policy);
  sim.replay_stream(reader);
  sim.flush();

  std::cout << "replayed " << reader.records_delivered() << " references on "
            << cache.describe() << " (policy " << dvf::policy_name(policy)
            << ", " << sim.shards() << " shard(s))\n\n";
  dvf::Table table({"structure", "accesses", "hits", "misses", "writebacks"});
  for (std::size_t i = 0; i < structures.size(); ++i) {
    const dvf::CacheStats st = sim.stats(static_cast<dvf::DsId>(i));
    table.add_row({structures[i].name,
                   dvf::num(static_cast<double>(st.accesses)),
                   dvf::num(static_cast<double>(st.hits)),
                   dvf::num(static_cast<double>(st.misses)),
                   dvf::num(static_cast<double>(st.writebacks))});
  }
  std::cout << table;
  return 0;
}

int cmd_infer(const Args& args) {
  if (args.positional.size() != 1) {
    return usage();
  }
  const dvf::TraceFile trace = dvf::read_trace_file(args.positional[0]);
  const auto assoc = numeric_option(args, "assoc", 4);
  const auto sets = numeric_option(args, "sets", 64);
  const auto line = numeric_option(args, "line", 32);
  const dvf::CacheConfig cache("infer", assoc, sets, line);

  const dvf::ModelSpec inferred = dvf::infer_model(trace);

  dvf::CacheSimulator sim(cache);
  sim.reserve_structures(trace.structures.size());
  sim.replay(trace.records);
  sim.flush();

  std::cout << "inferred model from " << trace.records.size()
            << " references; validating estimates on " << cache.describe()
            << "\n\n";
  dvf::Table table({"structure", "inferred pattern(s)", "sim_misses",
                    "estimate", "rel_err_%"});
  for (const auto& ds : inferred.structures) {
    std::string kinds;
    for (const auto& pattern : ds.patterns) {
      if (!kinds.empty()) {
        kinds += '+';
      }
      kinds += dvf::pattern_letter(pattern);
    }
    dvf::DsId id = dvf::kNoDs;
    for (std::size_t i = 0; i < trace.structures.size(); ++i) {
      if (trace.structures[i].name == ds.name) {
        id = static_cast<dvf::DsId>(i);
      }
    }
    const double simulated =
        static_cast<double>(sim.stats(id).misses);
    const double estimate =
        dvf::try_estimate_accesses(
            std::span<const dvf::PatternSpec>(ds.patterns), cache,
            g_eval_budget)
            .value_or_throw();
    table.add_row({ds.name, kinds, dvf::num(simulated), dvf::num(estimate),
                   dvf::num(100.0 * dvf::math::relative_error(estimate,
                                                              simulated),
                            3)});
  }
  std::cout << table;
  return 0;
}

// dvfc serve — the evaluation daemon (docs/serve.md). Runs until SIGTERM/
// SIGINT (graceful drain) or, in --stdio mode, until stdin reaches EOF.
int cmd_serve(const Args& args) {
  const bool stdio = args.flag("stdio");
  const std::string socket_path = args.option("socket", "");
  if (stdio == !socket_path.empty()) {
    throw BadUsage{"serve needs exactly one transport: --socket PATH or "
                   "--stdio"};
  }

  dvf::serve::ServerConfig config;
  config.socket_path = socket_path;
  config.workers = numeric_option(args, "workers", 2);
  config.queue_capacity = numeric_option(args, "queue", 64);
  config.max_connections = numeric_option(args, "max-connections", 64);
  config.retry_after_ms = numeric_option(args, "retry-after-ms", 100);
  config.drain_grace_s = real_option(args, "drain-grace", 5.0);
  config.metrics_interval_s = real_option(args, "metrics-interval", 0.0);
  config.engine.cache_capacity = numeric_option(args, "cache", 256);
  config.engine.max_request_bytes =
      numeric_option(args, "max-request-bytes", 1u << 20);
  config.engine.default_deadline_s =
      real_option(args, "default-deadline", 10.0);
  config.engine.max_deadline_s = real_option(args, "max-deadline", 60.0);
  if (config.queue_capacity == 0 || config.max_connections == 0 ||
      config.engine.max_request_bytes == 0) {
    throw BadUsage{"--queue, --max-connections and --max-request-bytes must "
                   "be positive"};
  }

  // The daemon's counters (cache hit/miss, shed, per-kind errors) are the
  // product, not a debugging aid: always record.
  dvf::obs::set_enabled(true);

  dvf::serve::Server server(config);
  // First signal: graceful drain. Second: the operator means it — exit now.
  auto signals = std::make_shared<std::atomic<int>>(0);
  dvf::serve::SignalGuard guard([&server, signals](int signo) {
    if (signals->fetch_add(1) == 0) {
      server.request_stop();
    } else {
      _exit(128 + signo);
    }
  });
  return server.run();
}

int run_command(const Args& args) {
  try {
    if (!options_recognized(args)) {
      return usage();
    }
    if (args.command == "check") {
      return cmd_check(args);
    }
    if (args.command == "lint") {
      return cmd_lint(args);
    }
    if (args.command == "analyze") {
      return cmd_analyze(args);
    }
    if (args.command == "fmt") {
      return cmd_fmt(args);
    }
    if (args.command == "eval") {
      return cmd_eval(args);
    }
    if (args.command == "caches") {
      return cmd_caches(args);
    }
    if (args.command == "ecc") {
      return cmd_ecc(args);
    }
    if (args.command == "kernels") {
      return cmd_kernels(args);
    }
    if (args.command == "campaign") {
      return cmd_campaign(args);
    }
    if (args.command == "trace") {
      return cmd_trace(args);
    }
    if (args.command == "replay") {
      return cmd_replay(args);
    }
    if (args.command == "infer") {
      return cmd_infer(args);
    }
    if (args.command == "serve") {
      return cmd_serve(args);
    }
    return usage();
  } catch (const BadUsage& err) {
    std::cerr << "dvfc: " << err.message
              << " (run 'dvfc' without arguments for usage)\n";
    return 2;
  } catch (const dvf::Error& err) {
    std::cerr << "dvfc: " << err.what() << "\n";
    return 1;
  } catch (const std::exception& err) {
    // Anything that is not a documented dvf::Error is an internal defect:
    // report it in one line and exit 3 instead of std::terminate.
    std::cerr << "dvfc: internal error: " << err.what() << "\n";
    return 3;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse_args(argc, argv);
  const ObsRequest obs_request = extract_obs_options(args);
  const DeadlineRequest deadline = extract_deadline_option(args);
  const FailpointsRequest failpoints = extract_failpoints_option(args);
  if (!obs_request.valid || !deadline.valid || !failpoints.valid) {
    return 2;
  }
  if (obs_request.active()) {
    dvf::obs::set_enabled(true);
  }
  dvf::EvalLimits limits;
  limits.wall_seconds = deadline.seconds;
  dvf::EvalBudget deadline_budget(limits);  // arms the deadline when > 0
  if (deadline.seconds > 0.0) {
    g_eval_budget = &deadline_budget;
  }
  // A SIGINT/SIGTERM mid-run must not lose the observability data collected
  // so far: flush the requested trace/metrics sinks, then exit with the
  // conventional signal code. `dvfc serve` pushes its own drain handler on
  // top of this one and pops it when the drain completes.
  std::optional<dvf::serve::SignalGuard> flush_guard;
  if (obs_request.active()) {
    flush_guard.emplace([&obs_request, &args](int signo) {
      emit_obs(obs_request, args.command);
      _exit(128 + signo);
    });
  }
  int code = run_command(args);
  // Flush trace/metrics even when the command failed (code 1/3): a failing
  // campaign's partial trace is exactly what one wants to look at. Bad
  // usage (2) produced no work worth reporting.
  if (obs_request.active() && code != 2) {
    if (!emit_obs(obs_request, args.command) && code == 0) {
      code = 1;
    }
  }
  return code;
}
